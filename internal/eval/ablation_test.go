package eval

import (
	"strings"
	"testing"

	"rsti/internal/sti"
)

func TestPPAblation(t *testing.T) {
	res, err := MeasurePPAblation()
	if err != nil {
		t.Fatal(err)
	}
	if !res.WithPPOK {
		t.Error("Figure 7 program trapped with the CE/FE machinery enabled")
	}
	if res.WithPPOps == 0 {
		t.Error("no pp operations executed with CE/FE enabled")
	}
	if !res.WithoutPPTraps {
		t.Error("disabling CE/FE did not false-positive — the mechanism is not load-bearing")
	}
}

func TestTBIAblation(t *testing.T) {
	res := MeasureTBIAblation(20480)
	if res.PACBitsTBI != 8 || res.PACBitsNoTBI != 16 {
		t.Fatalf("PAC widths: %d/%d, want 8/16", res.PACBitsTBI, res.PACBitsNoTBI)
	}
	// 8-bit PAC: expect ~trials/256 = 80 acceptances; allow a wide band.
	if res.AcceptedTBI < 20 || res.AcceptedTBI > 240 {
		t.Errorf("8-bit acceptance = %d/%d, far from the 2^-8 expectation", res.AcceptedTBI, res.Trials)
	}
	// 16-bit PAC: expect ~trials/65536 < 1.
	if res.AcceptedNoTBI > 3 {
		t.Errorf("16-bit acceptance = %d, far above the 2^-16 expectation", res.AcceptedNoTBI)
	}
	if res.AcceptedTBI <= res.AcceptedNoTBI {
		t.Error("TBI did not weaken the PAC — widths are not being applied")
	}
}

func TestAdaptiveAblation(t *testing.T) {
	res, err := MeasureAdaptiveAblation()
	if err != nil {
		t.Fatal(err)
	}
	stwc, adaptive, stl := res.Overhead[sti.STWC], res.Overhead[sti.Adaptive], res.Overhead[sti.STL]
	if !(stwc <= adaptive && adaptive <= stl) {
		t.Errorf("overhead not ordered: STWC=%.4f Adaptive=%.4f STL=%.4f", stwc, adaptive, stl)
	}
	fb := res.LocBoundFrac
	if fb[sti.STWC] != 0 {
		t.Errorf("STWC binds location on %.0f%% of members", fb[sti.STWC]*100)
	}
	if !(fb[sti.Adaptive] > 0 && fb[sti.Adaptive] < 1) {
		t.Errorf("Adaptive location-bound fraction = %.2f, want strictly between 0 and 1", fb[sti.Adaptive])
	}
	if fb[sti.STL] != 1 {
		t.Errorf("STL location-bound fraction = %.2f, want 1", fb[sti.STL])
	}
}

func TestRenderAblations(t *testing.T) {
	out, err := RenderAblations()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"CE/FE", "Top-Byte-Ignore", "adaptive"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation report missing %q", want)
		}
	}
}

func TestReplaySurfaceOrdering(t *testing.T) {
	rows, err := MeasureReplaySurface()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// STL leaves no substitutable pairs at all.
		if r.Pairs[sti.STL] != 0 {
			t.Errorf("%s: STL pairs = %d, want 0", r.Name, r.Pairs[sti.STL])
		}
		// Combining grows the surface relative to STWC (the paper's STC
		// security concession), and Adaptive trims STWC.
		if r.Pairs[sti.STC] < r.Pairs[sti.STWC] {
			t.Errorf("%s: STC surface (%d) below STWC (%d)", r.Name, r.Pairs[sti.STC], r.Pairs[sti.STWC])
		}
		if r.Pairs[sti.Adaptive] > r.Pairs[sti.STWC] {
			t.Errorf("%s: Adaptive surface (%d) above STWC (%d)", r.Name, r.Pairs[sti.Adaptive], r.Pairs[sti.STWC])
		}
	}
	// In aggregate, PARTS' type-only classes dwarf every RSTI surface
	// (per-benchmark exceptions exist where cast merging is dense
	// relative to type diversity).
	var parts, stc int64
	for _, r := range rows {
		parts += r.Pairs[sti.PARTS]
		stc += r.Pairs[sti.STC]
	}
	if parts < stc*10 {
		t.Errorf("aggregate PARTS surface (%d) not an order of magnitude above STC (%d)", parts, stc)
	}
	out := RenderReplaySurface(rows)
	if !strings.Contains(out, "TOTAL") {
		t.Error("render missing totals")
	}
}

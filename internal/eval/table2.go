package eval

import (
	"fmt"

	"rsti/internal/core"
	"rsti/internal/report"
	"rsti/internal/sti"
	"rsti/internal/vm"
)

// probe is a small victim + corruption measuring one Table 2 capability.
type probe struct {
	name    string
	src     string
	corrupt vm.Hook
	// successExit marks the attack goal (when the defense misses).
	successExit int64
}

// table2Probes exercise the attacker restrictions Table 2 summarizes.
func table2Probes() []probe {
	return []probe{
		{
			// Arbitrary pointer corruption: no valid PAC at all.
			name: "corrupt with arbitrary value",
			src: `
				int ok(void) { return 1; }
				int (*h)(void);
				int main(void) { h = ok; __hook(1); return h(); }
			`,
			corrupt: func(m *vm.Machine) error {
				a, _ := m.GlobalAddr("h")
				return m.Mem.Poke(a, 0x4141414141, 8)
			},
			successExit: -1, // an arbitrary value never "succeeds" cleanly
		},
		{
			// Substitution within one RSTI-type: the replay the paper
			// concedes to STC/STWC and STL refuses.
			name: "substitute same RSTI-type pointer",
			src: `
				int red(void) { return 1; }
				int blue(void) { return 99; }
				int (*ha)(void);
				int (*hb)(void);
				int main(void) { ha = red; hb = blue; __hook(1); return ha(); }
			`,
			corrupt: func(m *vm.Machine) error {
				srcA, _ := m.GlobalAddr("hb")
				dst, _ := m.GlobalAddr("ha")
				v, err := m.Mem.Peek(srcA, 8)
				if err != nil {
					return err
				}
				return m.Mem.Poke(dst, v, 8)
			},
			successExit: 99,
		},
		{
			// Spatial: an overflow writes attacker bytes over an
			// adjacent pointer slot.
			name: "spatial overflow into pointer",
			src: `
				struct rec { char buf[16]; char *name; };
				struct rec *r;
				int main(void) {
					r = (struct rec*) malloc(sizeof(struct rec));
					r->name = "safe";
					__hook(1);
					return (int) strlen(r->name);
				}
			`,
			corrupt: func(m *vm.Machine) error {
				slot, _ := m.GlobalAddr("r")
				obj, err := m.Mem.Peek(slot, 8)
				if err != nil {
					return err
				}
				// Overflow buf into name with a raw in-bounds address.
				return m.Mem.Poke(m.Unit.Canonical(obj)+16, vm.StringsBase, 8)
			},
			successExit: -1,
		},
		{
			// Temporal: a stale (freed) object's pointer field is reused
			// after the attacker replants it from a different RSTI-type.
			name: "temporal reuse with foreign pointer",
			src: `
				struct sess { char *token; };
				struct sess *s;
				char *public_banner;
				int main(void) {
					s = (struct sess*) malloc(sizeof(struct sess));
					s->token = "secret";
					public_banner = "hello";
					free((void*) s);
					__hook(1);
					return (int) strlen(s->token);
				}
			`,
			corrupt: func(m *vm.Machine) error {
				// Replay the banner (different variable, different
				// scope) into the dangling session's token field.
				bslot, _ := m.GlobalAddr("public_banner")
				v, err := m.Mem.Peek(bslot, 8)
				if err != nil {
					return err
				}
				sslot, _ := m.GlobalAddr("s")
				obj, err := m.Mem.Peek(sslot, 8)
				if err != nil {
					return err
				}
				return m.Mem.Poke(m.Unit.Canonical(obj), v, 8)
			},
			successExit: 5, // strlen("hello")
		},
	}
}

// RenderTable2 runs the capability probes under every mechanism and
// renders the Table 2 summary: which attacker moves each mechanism
// restricts.
func RenderTable2() string {
	t := &report.Table{
		Title:   "Table 2 — attacker restrictions per mechanism (probe outcomes)",
		Headers: []string{"capability probe", "none", "parts", "STWC", "STC", "STL"},
	}
	for _, pr := range table2Probes() {
		c, err := core.Compile(pr.src)
		if err != nil {
			return fmt.Sprintf("table2: %v", err)
		}
		row := []string{pr.name}
		for _, mech := range []sti.Mechanism{sti.None, sti.PARTS, sti.STWC, sti.STC, sti.STL} {
			res, err := c.Run(mech, core.RunConfig{Hooks: map[int64]vm.Hook{1: pr.corrupt}})
			if err != nil {
				return fmt.Sprintf("table2: %v", err)
			}
			switch {
			case res.Detected():
				row = append(row, "detected")
			case res.Err != nil:
				row = append(row, "crash")
			case pr.successExit >= 0 && res.Exit == pr.successExit:
				row = append(row, "bypassed")
			default:
				row = append(row, fmt.Sprintf("exit %d", res.Exit))
			}
		}
		t.Add(row...)
	}
	return t.String() +
		"\nReading: 'detected' = the defense trapped the corruption;" +
		"\n'bypassed' = the attack achieved its goal (the paper's replay concession for STC/STWC);" +
		"\n'crash' = the corruption faulted without defense semantics.\n"
}

package eval

import (
	"rsti/internal/compilecache"
	"rsti/internal/core"
)

// evalCache memoizes core.Compile by source text through the shared
// content-addressed cache. The static-analysis measurements
// (MeasureTable3, the pointer-to-pointer census it carries, and
// MeasureReplaySurface) all walk the same 18 full-size SPEC2006 programs;
// before this cache each of them recompiled the whole suite from scratch.
// Compilation is deterministic and the resulting Analysis is read-only,
// so sharing one Compilation across measurements is safe (per-mechanism
// builds are built exactly once behind their own once-cells).
//
// The cache is intentionally scoped to the static-analysis paths: the
// performance measurements (MeasureBenchmark and everything above it)
// keep compiling fresh so benchmark timings keep including compile cost.
// Unbounded within a process: the evaluation corpus is a fixed, known
// set, and eviction would silently turn repeat measurements into
// recompiles.
var evalCache = compilecache.New(compilecache.Config{MaxEntries: -1, MaxBytes: -1})

func compileCached(src string) (*core.Compilation, error) {
	return evalCache.Get(src)
}

// CompileCacheStats reports the shared evaluation compile cache's
// effectiveness counters (hits, misses, dedups, footprint) for the
// benchmark-trajectory record.
func CompileCacheStats() compilecache.Stats {
	return evalCache.Stats()
}

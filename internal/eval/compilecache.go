package eval

import (
	"sync"

	"rsti/internal/core"
)

// compileCached memoizes core.Compile by source text. The static-analysis
// measurements (MeasureTable3, the pointer-to-pointer census it carries,
// and MeasureReplaySurface) all walk the same 18 full-size SPEC2006
// programs; before this cache each of them recompiled the whole suite from
// scratch. Compilation is deterministic and the resulting Analysis is
// read-only, so sharing one Compilation across measurements is safe
// (Compilation.Build has its own lock for the lazily instrumented
// variants).
//
// The cache is intentionally scoped to the static-analysis paths: the
// performance measurements (MeasureBenchmark and everything above it) keep
// compiling fresh so benchmark timings keep including compile cost.
var compileCache sync.Map // source string -> *compileEntry

type compileEntry struct {
	once sync.Once
	c    *core.Compilation
	err  error
}

func compileCached(src string) (*core.Compilation, error) {
	v, _ := compileCache.LoadOrStore(src, &compileEntry{})
	e := v.(*compileEntry)
	e.once.Do(func() {
		e.c, e.err = core.Compile(src)
	})
	return e.c, e.err
}

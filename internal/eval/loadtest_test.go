package eval

import (
	"testing"
	"time"
)

func TestQuantiles(t *testing.T) {
	// 1..100 ms: nearest-rank percentiles are exact.
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond
	}
	q := Quantiles(samples)
	if q.P50Ms != 50 || q.P95Ms != 95 || q.P99Ms != 99 || q.MaxMs != 100 || q.Count != 100 {
		t.Errorf("quantiles over 1..100ms: %+v", q)
	}

	// Order independence: reversed input gives the same answer.
	rev := make([]time.Duration, len(samples))
	for i, s := range samples {
		rev[len(samples)-1-i] = s
	}
	if Quantiles(rev) != q {
		t.Error("quantiles depend on sample order")
	}
	// The input slice must not be reordered in place.
	if rev[0] != 100*time.Millisecond {
		t.Error("Quantiles mutated its input")
	}

	if z := Quantiles(nil); z != (LatencyQuantiles{}) {
		t.Errorf("empty sample: %+v", z)
	}
	one := Quantiles([]time.Duration{7 * time.Millisecond})
	if one.P50Ms != 7 || one.P99Ms != 7 || one.Count != 1 {
		t.Errorf("single sample: %+v", one)
	}
}

func TestLoadTestTrajectoryWarning(t *testing.T) {
	mk := func(label string, rps float64) BenchRecord {
		return BenchRecord{
			Label: label, GOOS: "linux", GOARCH: "amd64", CPUs: 8,
			LoadTest: &LoadTestRecord{
				Sessions: 1000, Concurrency: 64, Workers: 8, RequestsPerSec: rps,
			},
		}
	}
	prev := mk("pr7", 1000)
	rec := mk("dev", 500)
	warns := TrajectoryWarnings([]BenchRecord{prev}, &rec, 0.25)
	if len(warns) != 1 || !containsAll(warns[0], "load-test throughput", "pr7") {
		t.Errorf("expected one throughput warning, got %v", warns)
	}

	// Same shape, no regression: quiet.
	ok := mk("dev", 990)
	if w := TrajectoryWarnings([]BenchRecord{prev}, &ok, 0.25); len(w) != 0 {
		t.Errorf("unexpected warnings: %v", w)
	}

	// Different drive shape: not comparable, quiet.
	other := mk("dev", 100)
	other.LoadTest.Concurrency = 8
	if w := TrajectoryWarnings([]BenchRecord{prev}, &other, 0.25); len(w) != 0 {
		t.Errorf("cross-shape comparison should be suppressed: %v", w)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

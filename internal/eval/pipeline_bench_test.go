package eval

// Pipeline micro-benchmarks: compiler-side throughput of each stage on a
// Table 3-sized program (the "how long does the RSTI compiler itself
// take" question; the paper reports 20-30 minutes to build its LLVM).

import (
	"testing"

	"rsti/internal/cminor"
	"rsti/internal/lower"
	"rsti/internal/rsti"
	"rsti/internal/sti"
	"rsti/internal/vm"
	"rsti/internal/workload"
)

func pipelineSource(b *testing.B) string {
	b.Helper()
	return workload.SPEC2006Static()[1].Source // bzip2-sized
}

func BenchmarkPipelineFrontend(b *testing.B) {
	src := pipelineSource(b)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cminor.Frontend(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineLower(b *testing.B) {
	f, err := cminor.Frontend(pipelineSource(b))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lower.Lower(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineAnalyze(b *testing.B) {
	f, err := cminor.Frontend(pipelineSource(b))
	if err != nil {
		b.Fatal(err)
	}
	prog, err := lower.Lower(f)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sti.Analyze(prog)
	}
}

func BenchmarkPipelineInstrument(b *testing.B) {
	f, err := cminor.Frontend(pipelineSource(b))
	if err != nil {
		b.Fatal(err)
	}
	prog, err := lower.Lower(f)
	if err != nil {
		b.Fatal(err)
	}
	an := sti.Analyze(prog)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rsti.Instrument(prog, an, sti.STWC); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineInterpreter(b *testing.B) {
	// Interpreter throughput in modelled instructions per second.
	bench := workload.SPEC2017()[0]
	f, err := cminor.Frontend(bench.Source)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := lower.Lower(f)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		m := vm.New(prog, vm.DefaultOptions())
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
		instrs += m.Stats.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

package eval

import "fmt"

// ClusterLoadRecord is the datapoint cmd/rstiload -cluster appends to
// the benchmark trajectory: one mixed workload driven round-robin across
// an N-peer rstid fleet, followed by a cold-restart pass over one peer's
// persisted artifact directory. It captures the three cluster claims —
// the fleet compiles each program once (cache-share rate), forwarding to
// the ring owner is cheap (forward latency quantiles), and a restarted
// peer serves its first runs from persisted predecoded artifacts with
// zero instrumentation, bit-identically (cold-restart block).
type ClusterLoadRecord struct {
	// Drive shape.
	Peers       int `json:"peers"`
	Sessions    int `json:"sessions"`
	Concurrency int `json:"concurrency"`
	Programs    int `json:"programs"`

	WallSeconds    float64 `json:"wall_seconds"`
	Requests       int     `json:"requests"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	Errors         int     `json:"errors"`

	// Fleet-wide compile accounting, summed over every peer's
	// /v1/metrics. CacheShareRate = 1 - ClusterCompiles/ClusterLookups:
	// the share of compile lookups the fleet served without running a
	// compile (memory hits, disk hits, peer adoptions). RingServedShare
	// narrows to cold lookups only: of the misses, how many were served
	// by the disk level or a peer artifact instead of a compile.
	ClusterLookups  int64   `json:"cluster_lookups"`
	ClusterCompiles int64   `json:"cluster_compiles"`
	CacheShareRate  float64 `json:"cache_share_rate"`
	RingServedShare float64 `json:"ring_served_share"`

	// Forwarded artifact fetches (non-owners adopting the owner's work)
	// and their latency, from the routers' sample reservoirs.
	ForwardedFetches int64   `json:"forwarded_fetches"`
	ForwardErrors    int64   `json:"forward_errors,omitempty"`
	ForwardP50Ms     float64 `json:"forward_p50_ms"`
	ForwardP99Ms     float64 `json:"forward_p99_ms"`

	// Cold restart: a fresh daemon over one peer's artifact directory,
	// first-run latency over the warm working set, instrumentation passes
	// the restarted process ran while serving the full
	// {mechanism} x {optimizer} x {tier} matrix (the contract is zero),
	// and whether every modelled number matched an independently compiled
	// in-process reference bit-for-bit.
	ColdRestartFirstRunMs       float64 `json:"cold_restart_first_run_ms"`
	ColdRestartMatrixRuns       int     `json:"cold_restart_matrix_runs"`
	ColdRestartInstrumentations int64   `json:"cold_restart_instrumentations"`
	ColdRestartBitIdentical     bool    `json:"cold_restart_bit_identical"`
}

// Summary renders the record as a human-readable report.
func (r *ClusterLoadRecord) Summary() string {
	return fmt.Sprintf(
		"cluster load test: %d peers, %d sessions x %d programs, concurrency %d\n"+
			"  throughput:           %8.1f req/s (%d requests, %d errors, %.1f s)\n"+
			"  cache-share rate:     %8.2f %% (%d compiles / %d lookups fleet-wide)\n"+
			"  ring-served misses:   %8.2f %% (disk + peer artifacts)\n"+
			"  forwarded fetches:    %8d (p50 %.2f ms, p99 %.2f ms, %d errors)\n"+
			"  cold restart:         first run %.2f ms, %d matrix runs, "+
			"%d instrumentations, bit-identical: %v",
		r.Peers, r.Sessions, r.Programs, r.Concurrency,
		r.RequestsPerSec, r.Requests, r.Errors, r.WallSeconds,
		r.CacheShareRate*100, r.ClusterCompiles, r.ClusterLookups,
		r.RingServedShare*100,
		r.ForwardedFetches, r.ForwardP50Ms, r.ForwardP99Ms, r.ForwardErrors,
		r.ColdRestartFirstRunMs, r.ColdRestartMatrixRuns,
		r.ColdRestartInstrumentations, r.ColdRestartBitIdentical)
}

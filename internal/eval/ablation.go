package eval

import (
	"fmt"

	"rsti/internal/cminor"
	"rsti/internal/lower"
	"rsti/internal/pa"
	"rsti/internal/report"
	"rsti/internal/rsti"
	"rsti/internal/sti"
	"rsti/internal/vm"
	"rsti/internal/workload"
)

// figure7Program is the paper's pointer-to-pointer pattern, used by the
// CE/FE ablation.
const figure7Program = `
	struct node { int key; struct node *next; };
	void foo2(void **pp2) {
		if (*pp2 != NULL) { *pp2 = NULL; }
	}
	int main(void) {
		struct node *p = (struct node*) malloc(sizeof(struct node));
		p->key = 41;
		foo2((void**) &p);
		if (p == NULL) return 0;
		return 1;
	}
`

// PPAblation runs the Figure 7 program with and without the CE/FE
// machinery under one mechanism, reporting whether the benign program
// survives. Without CE/FE the universal double-pointer dereference falls
// back to the declared void* type's modifier, which cannot match the
// struct node* signing — a false positive, demonstrating why §4.7.7's
// mechanism is necessary.
type PPAblation struct {
	WithPPOK        bool // benign program runs clean with CE/FE
	WithoutPPTraps  bool // benign program false-positives without CE/FE
	WithPPOps       int64
	WithoutMismatch string
}

// MeasurePPAblation runs the CE/FE ablation under STWC.
func MeasurePPAblation() (*PPAblation, error) {
	f, err := cminor.Frontend(figure7Program)
	if err != nil {
		return nil, err
	}
	prog, err := lower.Lower(f)
	if err != nil {
		return nil, err
	}
	an := sti.Analyze(prog)

	run := func(opts rsti.Options) (*vm.Machine, error, error) {
		inst, _, err := rsti.InstrumentWithOptions(prog, an, sti.STWC, opts)
		if err != nil {
			return nil, nil, err
		}
		m := vm.New(inst, vm.DefaultOptions())
		_, runErr := m.Run()
		return m, runErr, nil
	}

	res := &PPAblation{}
	m, runErr, err := run(rsti.Options{})
	if err != nil {
		return nil, err
	}
	res.WithPPOK = runErr == nil
	res.WithPPOps = m.Stats.PPOps

	_, runErr, err = run(rsti.Options{DisablePP: true})
	if err != nil {
		return nil, err
	}
	if t, ok := vm.AsTrap(runErr); ok && t.SecurityTrap() {
		res.WithoutPPTraps = true
		res.WithoutMismatch = t.Msg
	}
	return res, nil
}

// TBIAblation measures the security cost of Top-Byte-Ignore: with TBI the
// PAC shrinks from 16 to 8 bits, so a forged or wrong-modifier pointer is
// accepted with probability ~2^-8 instead of ~2^-16. Rates are measured
// empirically against the real QARMA-backed unit.
type TBIAblation struct {
	Trials        int
	AcceptedTBI   int // wrong-modifier acceptances with TBI (8-bit PAC)
	AcceptedNoTBI int // with 16-bit PAC
	PACBitsTBI    int
	PACBitsNoTBI  int
}

// MeasureTBIAblation runs the acceptance-rate measurement.
func MeasureTBIAblation(trials int) *TBIAblation {
	keys := pa.GenerateKeys(0xA11)
	withTBI := pa.NewUnit(pa.Config{VABits: 48, TBI: true}, keys)
	noTBI := pa.NewUnit(pa.Config{VABits: 48, TBI: false}, keys)
	res := &TBIAblation{
		Trials:       trials,
		PACBitsTBI:   withTBI.PACBits(),
		PACBitsNoTBI: noTBI.PACBits(),
	}
	ptr := uint64(0x7fff00001000)
	for i := 0; i < trials; i++ {
		good := uint64(i)*2 + 1
		bad := good ^ 0xdeadbeef
		if _, ok := withTBI.Auth(withTBI.Sign(ptr, pa.KeyDA, good), pa.KeyDA, bad); ok {
			res.AcceptedTBI++
		}
		if _, ok := noTBI.Auth(noTBI.Sign(ptr, pa.KeyDA, good), pa.KeyDA, bad); ok {
			res.AcceptedNoTBI++
		}
	}
	return res
}

// AdaptiveAblation compares STWC, Adaptive and STL on a workload with
// both large and small equivalence classes: the overhead each pays, and
// the fraction of protected pointers whose class is location-bound (and
// therefore replay-proof).
type AdaptiveAblation struct {
	Cycles       map[sti.Mechanism]int64
	Overhead     map[sti.Mechanism]float64
	LocBoundFrac map[sti.Mechanism]float64
}

// MeasureAdaptiveAblation runs the comparison on a SPEC-shaped workload
// with a popular (large-ECV) pointer pool.
func MeasureAdaptiveAblation() (*AdaptiveAblation, error) {
	bench := workload.Generate(workload.Config{
		Name: "adaptive-ablation", Suite: "ablation",
		Structs: 8, PtrVars: 120, ColdFns: 8, CastRate: 20,
		Popular: 48, // one class well above the threshold
		Iters:   1500, ChainLen: 16,
		DerefOps: 8, CallOps: 2, CastOps: 2, ArithOps: 6,
		Seed: 0xAB1A,
	})
	f, err := cminor.Frontend(bench.Source)
	if err != nil {
		return nil, err
	}
	prog, err := lower.Lower(f)
	if err != nil {
		return nil, err
	}
	an := sti.Analyze(prog)

	res := &AdaptiveAblation{
		Cycles:       make(map[sti.Mechanism]int64),
		Overhead:     make(map[sti.Mechanism]float64),
		LocBoundFrac: make(map[sti.Mechanism]float64),
	}
	var base int64
	for _, mech := range []sti.Mechanism{sti.None, sti.STWC, sti.Adaptive, sti.STL} {
		inst, _, err := rsti.Instrument(prog, an, mech)
		if err != nil {
			return nil, err
		}
		m := vm.New(inst, vm.DefaultOptions())
		if _, err := m.Run(); err != nil {
			return nil, fmt.Errorf("%s: %w", mech, err)
		}
		res.Cycles[mech] = m.Stats.Cycles
		if mech == sti.None {
			base = m.Stats.Cycles
			continue
		}
		res.Overhead[mech] = float64(m.Stats.Cycles-base) / float64(base)
		// Fraction of protected members in location-bound classes.
		var members, bound int
		for _, rt := range an.Types {
			n := len(rt.Vars) + len(rt.Fields)
			members += n
			if an.UsesLocation(rt.ID, mech) {
				bound += n
			}
		}
		if members > 0 {
			res.LocBoundFrac[mech] = float64(bound) / float64(members)
		}
	}
	return res, nil
}

// RenderAblations formats all three ablation studies.
func RenderAblations() (string, error) {
	var out string

	ppRes, err := MeasurePPAblation()
	if err != nil {
		return "", err
	}
	out += "Ablation 1 — pointer-to-pointer CE/FE machinery (§4.7.7)\n"
	out += fmt.Sprintf("  with CE/FE:    benign Figure-7 program runs clean = %v (%d pp ops)\n", ppRes.WithPPOK, ppRes.WithPPOps)
	out += fmt.Sprintf("  without CE/FE: benign program false-positives    = %v\n", ppRes.WithoutPPTraps)
	out += "  (the tag-indexed FE store is what keeps universal double pointers usable)\n\n"

	tbi := MeasureTBIAblation(40960)
	out += "Ablation 2 — Top-Byte-Ignore vs PAC width\n"
	out += fmt.Sprintf("  TBI on  (%2d-bit PAC): wrong-modifier acceptance %d/%d (~2^-8 expected)\n",
		tbi.PACBitsTBI, tbi.AcceptedTBI, tbi.Trials)
	out += fmt.Sprintf("  TBI off (%2d-bit PAC): wrong-modifier acceptance %d/%d (~2^-16 expected)\n",
		tbi.PACBitsNoTBI, tbi.AcceptedNoTBI, tbi.Trials)
	out += "  (TBI buys the CE tag byte at 256x the PAC forgery probability)\n\n"

	ad, err := MeasureAdaptiveAblation()
	if err != nil {
		return "", err
	}
	t := &report.Table{
		Title:   "Ablation 3 — adaptive mechanism selection (§7 future work)",
		Headers: []string{"mechanism", "overhead", "members location-bound"},
	}
	for _, mech := range []sti.Mechanism{sti.STWC, sti.Adaptive, sti.STL} {
		t.Add(mech.String(), report.Percent(ad.Overhead[mech]),
			fmt.Sprintf("%.0f%%", ad.LocBoundFrac[mech]*100))
	}
	out += t.String()
	out += "  (Adaptive location-binds only classes larger than the replay threshold,\n"
	out += "   buying most of STL's protection at a fraction of its overhead)\n"
	return out, nil
}

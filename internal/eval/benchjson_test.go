package eval

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func stageRecord(label, goos string, cpus int, stages map[string]float64) BenchRecord {
	return BenchRecord{
		Label: label, GOOS: goos, GOARCH: "amd64", CPUs: cpus,
		PipelineStageNsPerOp: stages,
	}
}

func TestTrajectoryWarningsFlagRegressions(t *testing.T) {
	history := []BenchRecord{
		stageRecord("old", "linux", 1, map[string]float64{"instrument": 900e3}),
		stageRecord("prev", "linux", 1, map[string]float64{
			"instrument": 500e3, "frontend": 2e6,
		}),
		// Different host shape: must be skipped even though it is newer.
		stageRecord("otherhost", "linux", 8, map[string]float64{"instrument": 100e3}),
	}

	// 30% slower than "prev" (not "otherhost", not "old").
	rec := stageRecord("now", "linux", 1, map[string]float64{
		"instrument": 650e3, "frontend": 2.1e6, "analyze": 1e6,
	})
	warns := TrajectoryWarnings(history, &rec, 0.25)
	if len(warns) != 1 {
		t.Fatalf("warnings = %v, want exactly one", warns)
	}
	if !strings.Contains(warns[0], "instrument") || !strings.Contains(warns[0], `"prev"`) {
		t.Errorf("warning %q should name the stage and the compared record", warns[0])
	}

	// Within threshold: quiet.
	ok := stageRecord("ok", "linux", 1, map[string]float64{"instrument": 600e3})
	if warns := TrajectoryWarnings(history, &ok, 0.25); len(warns) != 0 {
		t.Errorf("within-threshold record warned: %v", warns)
	}

	// No comparable host shape: quiet.
	alien := stageRecord("alien", "darwin", 1, map[string]float64{"instrument": 9e9})
	if warns := TrajectoryWarnings(history, &alien, 0.25); len(warns) != 0 {
		t.Errorf("record with no comparable history warned: %v", warns)
	}
}

func TestReadAppendBenchRecordsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")

	if recs, err := ReadBenchRecords(path); err != nil || recs != nil {
		t.Fatalf("missing file: recs=%v err=%v, want nil/nil", recs, err)
	}
	a := stageRecord("a", "linux", 1, map[string]float64{"lower": 1})
	b := stageRecord("b", "linux", 1, map[string]float64{"lower": 2})
	if err := AppendBenchRecord(path, &a); err != nil {
		t.Fatal(err)
	}
	if err := AppendBenchRecord(path, &b); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadBenchRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Label != "a" || recs[1].Label != "b" {
		t.Fatalf("round trip = %+v", recs)
	}

	if err := os.WriteFile(path, []byte("{not an array}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBenchRecords(path); err == nil {
		t.Error("corrupt trajectory accepted")
	}
}

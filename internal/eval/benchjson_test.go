package eval

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func stageRecord(label, goos string, cpus int, stages map[string]float64) BenchRecord {
	return BenchRecord{
		Label: label, GOOS: goos, GOARCH: "amd64", CPUs: cpus,
		PipelineStageNsPerOp: stages,
	}
}

func TestTrajectoryWarningsFlagRegressions(t *testing.T) {
	history := []BenchRecord{
		stageRecord("old", "linux", 1, map[string]float64{"instrument": 900e3}),
		stageRecord("prev", "linux", 1, map[string]float64{
			"instrument": 500e3, "frontend": 2e6,
		}),
		// Different host shape: must be skipped even though it is newer.
		stageRecord("otherhost", "linux", 8, map[string]float64{"instrument": 100e3}),
	}

	// 30% slower than "prev" (not "otherhost", not "old").
	rec := stageRecord("now", "linux", 1, map[string]float64{
		"instrument": 650e3, "frontend": 2.1e6, "analyze": 1e6,
	})
	warns := TrajectoryWarnings(history, &rec, 0.25)
	if len(warns) != 1 {
		t.Fatalf("warnings = %v, want exactly one", warns)
	}
	if !strings.Contains(warns[0], "instrument") || !strings.Contains(warns[0], `"prev"`) {
		t.Errorf("warning %q should name the stage and the compared record", warns[0])
	}

	// Within threshold: quiet.
	ok := stageRecord("ok", "linux", 1, map[string]float64{"instrument": 600e3})
	if warns := TrajectoryWarnings(history, &ok, 0.25); len(warns) != 0 {
		t.Errorf("within-threshold record warned: %v", warns)
	}

	// No comparable host shape: quiet.
	alien := stageRecord("alien", "darwin", 1, map[string]float64{"instrument": 9e9})
	if warns := TrajectoryWarnings(history, &alien, 0.25); len(warns) != 0 {
		t.Errorf("record with no comparable history warned: %v", warns)
	}
}

// TestTrajectoryWarningsWalkPastPartialRecords: records written by load-
// or cluster-only passes carry no micro-benchmark fields; the guard must
// compare each metric against the last record that measured it — a
// partial record in between must neither mask a real regression (by
// becoming the "previous" record with zero fields) nor fabricate one.
func TestTrajectoryWarningsWalkPastPartialRecords(t *testing.T) {
	full := stageRecord("full", "linux", 1, map[string]float64{"instrument": 500e3})
	full.PACDenseInstrsPerSec = 100e6

	loadOnly := BenchRecord{
		Label: "load-only", GOOS: "linux", GOARCH: "amd64", CPUs: 1,
		LoadTest: &LoadTestRecord{Sessions: 10, Concurrency: 2, Workers: 2, RequestsPerSec: 50},
	}
	clusterOnly := BenchRecord{
		Label: "cluster-only", GOOS: "linux", GOARCH: "amd64", CPUs: 1,
		ClusterLoad: &ClusterLoadRecord{Peers: 3, Sessions: 100, Programs: 8, CacheShareRate: 0.99},
	}
	history := []BenchRecord{full, loadOnly, clusterOnly}

	// A regressed micro pass must be caught against "full", two records
	// back, not silently compared against the partial records' zeroes.
	regressed := stageRecord("now", "linux", 1, map[string]float64{"instrument": 700e3})
	regressed.PACDenseInstrsPerSec = 60e6
	warns := TrajectoryWarnings(history, &regressed, 0.25)
	if len(warns) != 2 {
		t.Fatalf("warnings = %v, want instrument + pac-dense vs %q", warns, "full")
	}
	for _, w := range warns {
		if !strings.Contains(w, `"full"`) {
			t.Errorf("warning %q should compare against the full record", w)
		}
	}

	// A fresh load-only record has every micro field unset: it must not
	// warn about "regressing" from full's real numbers to zero.
	freshLoad := BenchRecord{
		Label: "load-2", GOOS: "linux", GOARCH: "amd64", CPUs: 1,
		LoadTest: &LoadTestRecord{Sessions: 10, Concurrency: 2, Workers: 2, RequestsPerSec: 49},
	}
	if warns := TrajectoryWarnings(history, &freshLoad, 0.25); len(warns) != 0 {
		t.Errorf("partial record fabricated warnings: %v", warns)
	}

	// The load-test metric itself still compares across the gap, against
	// the matching-shape load-only record.
	slowLoad := freshLoad
	slowLoad.LoadTest = &LoadTestRecord{Sessions: 10, Concurrency: 2, Workers: 2, RequestsPerSec: 10}
	warns = TrajectoryWarnings(history, &slowLoad, 0.25)
	if len(warns) != 1 || !strings.Contains(warns[0], `"load-only"`) {
		t.Fatalf("load regression warnings = %v, want one vs %q", warns, "load-only")
	}

	// Same for the cluster cache-share rate.
	brokenShare := BenchRecord{
		Label: "cluster-2", GOOS: "linux", GOARCH: "amd64", CPUs: 1,
		ClusterLoad: &ClusterLoadRecord{Peers: 3, Sessions: 100, Programs: 8, CacheShareRate: 0.40},
	}
	warns = TrajectoryWarnings(history, &brokenShare, 0.25)
	if len(warns) != 1 || !strings.Contains(warns[0], "cache-share") {
		t.Fatalf("cluster regression warnings = %v, want one cache-share line", warns)
	}
}

func TestReadAppendBenchRecordsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")

	if recs, err := ReadBenchRecords(path); err != nil || recs != nil {
		t.Fatalf("missing file: recs=%v err=%v, want nil/nil", recs, err)
	}
	a := stageRecord("a", "linux", 1, map[string]float64{"lower": 1})
	b := stageRecord("b", "linux", 1, map[string]float64{"lower": 2})
	if err := AppendBenchRecord(path, &a); err != nil {
		t.Fatal(err)
	}
	if err := AppendBenchRecord(path, &b); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadBenchRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Label != "a" || recs[1].Label != "b" {
		t.Fatalf("round trip = %+v", recs)
	}

	if err := os.WriteFile(path, []byte("{not an array}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBenchRecords(path); err == nil {
		t.Error("corrupt trajectory accepted")
	}
}

package eval

import (
	"strings"
	"testing"
)

// TestMeasureMemBenchZeroSteadyState runs the real measurement pass and
// pins the execution-core contract where the trajectory records it: the
// steady-state run path allocates nothing on either tier.
func TestMeasureMemBenchZeroSteadyState(t *testing.T) {
	rec, err := MeasureMemBench()
	if err != nil {
		t.Fatal(err)
	}
	if rec.AllocsPerRun != 0 {
		t.Errorf("interpreter allocs/run = %.2f, want 0", rec.AllocsPerRun)
	}
	if rec.TierAllocsPerRun != 0 {
		t.Errorf("tier allocs/run = %.2f, want 0", rec.TierAllocsPerRun)
	}
	if rec.Runs <= 0 {
		t.Errorf("Runs = %d, want positive", rec.Runs)
	}
	if s := rec.Summary(); !strings.Contains(s, "steady-state allocs") {
		t.Errorf("Summary() = %q, want the allocs line", s)
	}
}

func memRecord(label string, allocs, tierAllocs, bytes, pause float64, gcs uint32) BenchRecord {
	return BenchRecord{
		Label: label, GOOS: "linux", GOARCH: "amd64", CPUs: 1,
		Mem: &MemBenchRecord{
			AllocsPerRun:     allocs,
			TierAllocsPerRun: tierAllocs,
			BytesPerRun:      bytes,
			GCPauseP99Ns:     pause,
			NumGC:            gcs,
			Runs:             30,
		},
	}
}

// TestTrajectoryWarningsGuardMemFields: the mem section gets the same
// walk-back guard as throughput — and because the healthy baseline is
// exactly zero, ANY reintroduced steady-state allocation must warn.
func TestTrajectoryWarningsGuardMemFields(t *testing.T) {
	history := []BenchRecord{memRecord("zero", 0, 0, 0, 0, 0)}

	// Bit-for-bit clean successor: quiet.
	clean := memRecord("clean", 0, 0, 0, 0, 0)
	if warns := TrajectoryWarnings(history, &clean, 0.25); len(warns) != 0 {
		t.Errorf("clean mem record warned: %v", warns)
	}

	// One reintroduced allocation per run against a zero baseline warns,
	// on both tiers, with the bytes it dragged in.
	dirty := memRecord("dirty", 1, 2, 64, 0, 0)
	warns := TrajectoryWarnings(history, &dirty, 0.25)
	if len(warns) != 3 {
		t.Fatalf("warnings = %v, want allocs + tier allocs + bytes", warns)
	}
	for _, w := range warns {
		if !strings.Contains(w, `"zero"`) {
			t.Errorf("warning %q should name the zero baseline", w)
		}
	}

	// Against a nonzero baseline the usual threshold band applies.
	history = []BenchRecord{memRecord("nonzero", 4, 2, 1000, 100e3, 3)}
	within := memRecord("within", 4.5, 2.2, 1100, 110e3, 3)
	if warns := TrajectoryWarnings(history, &within, 0.25); len(warns) != 0 {
		t.Errorf("within-threshold mem record warned: %v", warns)
	}
	beyond := memRecord("beyond", 6, 3, 2000, 200e3, 9)
	warns = TrajectoryWarnings(history, &beyond, 0.25)
	if len(warns) != 4 {
		t.Fatalf("warnings = %v, want allocs + tier + bytes + pause", warns)
	}

	// A mem-less record (load-only pass) neither warns nor masks: the next
	// mem-carrying record still compares against the last one that
	// measured.
	history = append(history, BenchRecord{Label: "load-only", GOOS: "linux", GOARCH: "amd64", CPUs: 1})
	warns = TrajectoryWarnings(history, &beyond, 0.25)
	if len(warns) != 4 || !strings.Contains(warns[0], `"nonzero"`) {
		t.Fatalf("walk-back past mem-less record failed: %v", warns)
	}
	noMem := BenchRecord{Label: "load-2", GOOS: "linux", GOARCH: "amd64", CPUs: 1}
	if warns := TrajectoryWarnings(history, &noMem, 0.25); len(warns) != 0 {
		t.Errorf("mem-less record fabricated warnings: %v", warns)
	}
}

package eval

// Compile-path benchmarks: the cost of producing protected builds — the
// parallel per-function instrumentation fan-out, the three-mechanism
// build (serial Build×3 vs concurrent BuildAll over once-cells), and the
// shared compile cache's warm-hit path.

import (
	"testing"

	"rsti/internal/cminor"
	"rsti/internal/compilecache"
	"rsti/internal/core"
	"rsti/internal/lower"
	"rsti/internal/rsti"
	"rsti/internal/sti"
)

// BenchmarkPipelineInstrumentParallel is BenchmarkPipelineInstrument with
// an explicit multi-worker fan-out (the default tracks GOMAXPROCS, which
// is 1 on a single-core host).
func BenchmarkPipelineInstrumentParallel(b *testing.B) {
	f, err := cminor.Frontend(pipelineSource(b))
	if err != nil {
		b.Fatal(err)
	}
	prog, err := lower.Lower(f)
	if err != nil {
		b.Fatal(err)
	}
	an := sti.Analyze(prog)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rsti.InstrumentWithOptions(prog, an, sti.STWC, rsti.Options{Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCompilations pre-compiles b.N fresh compilations outside the timer
// so a build benchmark measures instrumentation alone, on virgin
// once-cells every iteration.
func benchCompilations(b *testing.B) []*core.Compilation {
	b.Helper()
	src := pipelineSource(b)
	comps := make([]*core.Compilation, b.N)
	for i := range comps {
		c, err := core.Compile(src)
		if err != nil {
			b.Fatal(err)
		}
		comps[i] = c
	}
	return comps
}

var build3Mechs = []sti.Mechanism{sti.STWC, sti.STC, sti.STL}

func BenchmarkBuild3Serial(b *testing.B) {
	comps := benchCompilations(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range build3Mechs {
			if _, err := comps[i].Build(m); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkBuild3Parallel(b *testing.B) {
	comps := benchCompilations(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := comps[i].BuildAll(build3Mechs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileParallel is the whole compile path a served burst pays
// after the first request: a cache-warm Get plus a concurrent
// three-mechanism build on already-populated once-cells.
func BenchmarkCompileParallel(b *testing.B) {
	src := pipelineSource(b)
	cache := compilecache.New(compilecache.Config{})
	c, err := cache.Get(src)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.BuildAll(build3Mechs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := cache.Get(src)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.BuildAll(build3Mechs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileCacheWarmGet(b *testing.B) {
	src := pipelineSource(b)
	cache := compilecache.New(compilecache.Config{})
	if _, err := cache.Get(src); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.Get(src); err != nil {
			b.Fatal(err)
		}
	}
}

package eval

// Benchmark-trajectory harness: one self-contained measurement pass over
// the reproduction's host-side hot paths, serialized as a datapoint in
// BENCH_RESULTS.json. Each optimization PR appends a labelled record, so
// the file accumulates the repo's performance history and any regression
// shows up as a drop between adjacent records. The modelled numbers
// (cycles, overhead percentages) recorded here double as an invariant
// trace: they must stay bit-identical across host-side optimization.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"rsti/internal/cminor"
	"rsti/internal/compilecache"
	"rsti/internal/core"
	"rsti/internal/lower"
	"rsti/internal/pa"
	"rsti/internal/qarma"
	"rsti/internal/rsti"
	"rsti/internal/sti"
	"rsti/internal/vm"
	"rsti/internal/workload"
)

// BenchRecord is one datapoint of the benchmark trajectory.
type BenchRecord struct {
	Label     string `json:"label"`
	Timestamp string `json:"timestamp"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`

	// Host-side throughput. All micro-benchmark fields are omitempty:
	// records written by load- or security-only passes (rstiload,
	// rstibench -secjson) legitimately never measure them, and a zero in
	// the trajectory must read as "not measured", not "infinitely fast" —
	// the regression guard walks back past such records per metric.
	QarmaEncryptNsPerOp     float64            `json:"qarma_encrypt_ns_per_op,omitempty"`
	PACSignWarmNsPerOp      float64            `json:"pac_sign_warm_ns_per_op,omitempty"`
	PipelineStageNsPerOp    map[string]float64 `json:"pipeline_stage_ns_per_op,omitempty"`
	InterpreterInstrsPerSec float64            `json:"interpreter_instrs_per_sec,omitempty"`
	PACCacheHitRate         float64            `json:"pac_cache_hit_rate,omitempty"`
	Figure9WallSeconds      float64            `json:"figure9_wall_seconds,omitempty"`

	// Tiered execution: modelled instrs/s on the same interpreter workload
	// with the profile-guided direct-threaded tier enabled, how many
	// function promotions the measured run performed, and whether the
	// tier-on run's modelled statistics matched the tier-off run
	// bit-identically (host-side observability counters excluded).
	TieredInstrsPerSec float64 `json:"tiered_instrs_per_sec,omitempty"`
	TierPromotions     int64   `json:"tier_promotions,omitempty"`
	TierBitIdentical   bool    `json:"tier_bit_identical,omitempty"`

	// Engine throughput sweep: modelled instrs/s through internal/engine
	// at each worker count, whether every run stayed bit-identical to the
	// sequential reference, and the best-over-1-worker scaling factor
	// (bounded above by the host CPU count recorded in CPUs).
	EngineThroughput   []EngineThroughputPoint `json:"engine_throughput,omitempty"`
	EngineScalingOver1 float64                 `json:"engine_scaling_over_1,omitempty"`
	EngineBitIdentical bool                    `json:"engine_bit_identical,omitempty"`

	// Compile-path measurements: effectiveness of the shared
	// content-addressed compile cache on a double pass over part of the
	// static corpus (the second pass must be pure hits), the warm-hit
	// latency, and the wall time to produce the three RSTI builds of a
	// Table 3-sized program serially (Build × 3) versus concurrently
	// (BuildAll over the per-mechanism once-cells).
	CompileCacheHitRate     float64 `json:"compile_cache_hit_rate,omitempty"`
	CompileCacheWarmNsPerOp float64 `json:"compile_cache_warm_ns_per_op,omitempty"`
	Build3SerialNsPerOp     float64 `json:"build3_serial_ns_per_op,omitempty"`
	Build3ParallelNsPerOp   float64 `json:"build3_parallel_ns_per_op,omitempty"`

	// PAC elision and superinstruction fusion: per-mechanism dynamic
	// PAC-op reduction (percent) from the safety-preserving elision pass
	// on the Table 3-sized trajectory program, plus the PAC-dense
	// microbenchmark's modelled-instruction throughput on the fused
	// dispatch path and the share of its modelled instructions retired
	// through fused sign/store · auth/load dispatches.
	PACOpsElidedPct      map[string]float64 `json:"pac_ops_elided_pct,omitempty"`
	PACDenseInstrsPerSec float64            `json:"pac_dense_instrs_per_sec,omitempty"`
	PACDenseFusedShare   float64            `json:"pac_dense_fused_share,omitempty"`

	// Service load test: end-to-end latency percentiles and throughput
	// from cmd/rstiload driving concurrent compile+run sessions through
	// the /v1 HTTP API. Unlike the sections above this measures the
	// whole daemon — admission, cache coalescing, engine queueing —
	// not an isolated component.
	LoadTest *LoadTestRecord `json:"load_test,omitempty"`

	// Memory behaviour of the steady-state run path: allocations and
	// bytes per Reset+Run (pinned at zero by the execution-core contract),
	// the tier's budget, and GC activity. A pointer, not omitempty values:
	// zero IS the healthy measurement, so absence must mean "not measured".
	Mem *MemBenchRecord `json:"mem,omitempty"`

	// Cluster load test: cmd/rstiload -cluster driving an N-peer fleet —
	// cross-node cache sharing, forwarded-compile latency, and the
	// cold-restart contract (first run from persisted artifacts with zero
	// instrumentation, bit-identical modelled numbers).
	ClusterLoad *ClusterLoadRecord `json:"cluster_load,omitempty"`

	// Modelled invariants: host optimization must never move these.
	Figure9GeomeanPct map[string]float64 `json:"figure9_overall_geomean_pct,omitempty"`
	GoldenCycles      map[string]int64   `json:"golden_cycles,omitempty"`
}

// modelledStats strips the host-side observability counters (cache
// effectiveness, fusion and tier attribution) from a stats snapshot,
// leaving exactly the modelled numbers the bit-identity contract covers.
func modelledStats(s vm.Stats) vm.Stats {
	s.PACCacheHits, s.PACCacheMisses = 0, 0
	s.FusedAuthLoads, s.FusedSignStores, s.FusedAuthStores = 0, 0, 0
	s.FusedAuthAddrLoads, s.FusedAuthAddrStores, s.FusedInstrs = 0, 0, 0
	s.ThreadedInstrs = 0
	return s
}

// timeOp measures fn's best-of-runs time per op in nanoseconds.
func timeOp(runs, opsPerRun int, fn func()) float64 {
	best := 0.0
	for r := 0; r < runs; r++ {
		start := time.Now()
		fn()
		ns := float64(time.Since(start).Nanoseconds()) / float64(opsPerRun)
		if r == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// MeasureBenchTrajectory runs the full measurement pass.
func MeasureBenchTrajectory(label string) (*BenchRecord, error) {
	rec := &BenchRecord{
		Label:     label,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),

		PipelineStageNsPerOp: make(map[string]float64),
		Figure9GeomeanPct:    make(map[string]float64),
		GoldenCycles:         make(map[string]int64),
	}

	// QARMA cipher throughput.
	cipher := qarma.New(0x84be85ce9804e94b, 0xec2802d4e0a488e9, qarma.StandardRounds)
	var sink uint64
	rec.QarmaEncryptNsPerOp = timeOp(5, 200_000, func() {
		for i := 0; i < 200_000; i++ {
			sink ^= cipher.Encrypt(uint64(i), 0x477d469dec0b8762)
		}
	})

	// Warm PAC sign throughput (memoization hit path).
	unit := pa.NewUnit(pa.DefaultConfig(), pa.GenerateKeys(1))
	rec.PACSignWarmNsPerOp = timeOp(5, 200_000, func() {
		for i := 0; i < 200_000; i++ {
			sink ^= unit.Sign(0x4000_1234, pa.KeyDA, 0x42)
		}
	})
	_ = sink

	// Compiler pipeline stage throughput on a Table 3-sized program.
	src := workload.SPEC2006Static()[1].Source
	f, err := cminor.Frontend(src)
	if err != nil {
		return nil, err
	}
	prog, err := lower.Lower(f)
	if err != nil {
		return nil, err
	}
	an := sti.Analyze(prog)
	rec.PipelineStageNsPerOp["frontend"] = timeOp(5, 1, func() { cminor.Frontend(src) })
	rec.PipelineStageNsPerOp["lower"] = timeOp(5, 1, func() { lower.Lower(f) })
	rec.PipelineStageNsPerOp["analyze"] = timeOp(5, 1, func() { sti.Analyze(prog) })
	rec.PipelineStageNsPerOp["instrument"] = timeOp(5, 1, func() { rsti.Instrument(prog, an, sti.STWC) })

	// Compile-cache effectiveness: one cold pass over a slice of the
	// static corpus through a fresh bounded cache, then timed warm passes
	// that must be answered entirely from cache. With 3 timed passes the
	// hit rate lands at exactly 0.75 — any deviation means the cache
	// stopped recognizing identical source. The latency figure is the
	// warm-hit path: a content hash plus a map probe.
	statics := workload.SPEC2006Static()
	if len(statics) > 6 {
		statics = statics[:6]
	}
	cc := compilecache.New(compilecache.Config{})
	for _, b := range statics {
		if _, err := cc.Get(b.Source); err != nil {
			return nil, err
		}
	}
	rec.CompileCacheWarmNsPerOp = timeOp(3, len(statics), func() {
		for _, b := range statics {
			cc.Get(b.Source)
		}
	})
	rec.CompileCacheHitRate = cc.Stats().HitRate()

	// Three-mechanism build wall time, serial vs concurrent, on fresh
	// compilations of the same Table 3-sized program (each measurement
	// needs virgin once-cells).
	mechs3 := []sti.Mechanism{sti.STWC, sti.STC, sti.STL}
	comps := make([]*core.Compilation, 6)
	for i := range comps {
		if comps[i], err = core.Compile(src); err != nil {
			return nil, err
		}
	}
	rep := 0
	rec.Build3SerialNsPerOp = timeOp(3, 1, func() {
		c := comps[rep]
		rep++
		for _, m := range mechs3 {
			c.Build(m)
		}
	})
	rec.Build3ParallelNsPerOp = timeOp(3, 1, func() {
		c := comps[rep]
		rep++
		c.BuildAll(mechs3)
	})

	// Interpreter throughput (modelled instructions per host second) on an
	// uninstrumented SPEC2017 run, best of three.
	interp := workload.SPEC2017()[0]
	fi, err := cminor.Frontend(interp.Source)
	if err != nil {
		return nil, err
	}
	pi, err := lower.Lower(fi)
	if err != nil {
		return nil, err
	}
	bestPerSec := 0.0
	var interpStats vm.Stats
	for r := 0; r < 3; r++ {
		m := vm.New(pi, vm.DefaultOptions())
		start := time.Now()
		if _, err := m.Run(); err != nil {
			return nil, err
		}
		perSec := float64(m.Stats.Instrs) / time.Since(start).Seconds()
		if perSec > bestPerSec {
			bestPerSec = perSec
		}
		interpStats = m.Stats
	}
	rec.InterpreterInstrsPerSec = bestPerSec

	// Tiered throughput on the same workload: one shared image so the
	// first round pays profiling + promotion and later rounds run the
	// compiled bodies, exactly like a warmed serving process. The modelled
	// statistics must match the interpreter's bit-for-bit.
	tierImg := vm.NewImage(pi)
	var tierStats vm.Stats
	for r := 0; r < 3; r++ {
		opts := vm.DefaultOptions()
		opts.Image = tierImg
		opts.Tier = true
		m := vm.New(pi, opts)
		start := time.Now()
		if _, err := m.Run(); err != nil {
			return nil, err
		}
		perSec := float64(m.Stats.Instrs) / time.Since(start).Seconds()
		if perSec > rec.TieredInstrsPerSec {
			rec.TieredInstrsPerSec = perSec
		}
		tierStats = m.Stats
	}
	rec.TierPromotions = tierImg.TierStats().Promotions
	rec.TierBitIdentical = modelledStats(interpStats) == modelledStats(tierStats)

	// PAC-cache hit rate and golden modelled cycles on the fixed
	// workloads the golden regression test pins.
	goldens := []*workload.Benchmark{workload.SPEC2017()[0], workload.NBench()[0]}
	for _, b := range goldens {
		c, err := core.Compile(b.Source)
		if err != nil {
			return nil, err
		}
		for _, mech := range []sti.Mechanism{sti.None, sti.STWC, sti.STC, sti.STL} {
			// Golden cycles are pinned on unoptimized builds; keep the
			// recorded invariant independent of the RSTI_OPT process default.
			res, err := c.Run(mech, core.RunConfig{Optimize: core.OptimizeOff})
			if err != nil {
				return nil, err
			}
			if res.Err != nil {
				return nil, fmt.Errorf("%s under %s: %w", b.Name, mech, res.Err)
			}
			rec.GoldenCycles[b.Name+"/"+mech.String()] = res.Stats.Cycles
			if b.Suite == "SPEC2017" && mech == sti.STL {
				rec.PACCacheHitRate = res.Stats.PACCacheHitRate()
			}
		}
	}

	// PAC elision effectiveness on the Table 3-sized trajectory program:
	// the dynamic PAC-op reduction per mechanism with the optimizer on
	// versus off, benign behaviour verified identical as a side condition.
	rec.PACOpsElidedPct = make(map[string]float64)
	elisionComp, err := core.Compile(src)
	if err != nil {
		return nil, err
	}
	for _, mech := range []sti.Mechanism{sti.STWC, sti.STC, sti.STL, sti.Adaptive} {
		off, err := elisionComp.Run(mech, core.RunConfig{Optimize: core.OptimizeOff})
		if err != nil {
			return nil, err
		}
		on, err := elisionComp.Run(mech, core.RunConfig{Optimize: core.OptimizeOn})
		if err != nil {
			return nil, err
		}
		if off.Err != nil || on.Err != nil || on.Exit != off.Exit || on.Output != off.Output {
			return nil, fmt.Errorf("elision measurement under %s: optimized run diverged", mech)
		}
		if off.Stats.PACOps() > 0 {
			rec.PACOpsElidedPct[mech.String()] =
				100 * (1 - float64(on.Stats.PACOps())/float64(off.Stats.PACOps()))
		}
	}

	// PAC-dense fused-dispatch throughput: modelled instructions per host
	// second on a pointer-chasing kernel under STWC with the optimizer on,
	// best of three, plus the share of modelled instructions retired
	// through fused sign/store · auth/load dispatches.
	dense := workload.PACDense()
	denseComp, err := core.Compile(dense.Source)
	if err != nil {
		return nil, err
	}
	for r := 0; r < 3; r++ {
		start := time.Now()
		res, err := denseComp.Run(sti.STWC, core.RunConfig{Optimize: core.OptimizeOn})
		if err != nil {
			return nil, err
		}
		if res.Err != nil {
			return nil, fmt.Errorf("pac-dense under %s: %w", sti.STWC, res.Err)
		}
		perSec := float64(res.Stats.Instrs) / time.Since(start).Seconds()
		if perSec > rec.PACDenseInstrsPerSec {
			rec.PACDenseInstrsPerSec = perSec
		}
		if r == 0 {
			rec.PACDenseFusedShare = res.Stats.FusedShare()
		}
	}

	// Figure 9 wall-clock and (invariant) overall geomeans.
	start := time.Now()
	fig, err := MeasureFigure9()
	if err != nil {
		return nil, err
	}
	rec.Figure9WallSeconds = time.Since(start).Seconds()
	for mech, g := range fig.Overall {
		rec.Figure9GeomeanPct[mech.String()] = g * 100
	}

	// Steady-state memory behaviour (allocations, bytes, GC pauses).
	if rec.Mem, err = MeasureMemBench(); err != nil {
		return nil, err
	}

	// Engine throughput sweep over worker counts, with per-run
	// bit-identical verification against the sequential reference.
	points, err := MeasureEngineThroughput([]int{1, 2, 4, 8})
	if err != nil {
		return nil, err
	}
	rec.EngineThroughput = points
	rec.EngineScalingOver1 = ScalingOver1(points)
	rec.EngineBitIdentical = true
	for _, p := range points {
		if !p.BitIdentical {
			rec.EngineBitIdentical = false
		}
	}
	return rec, nil
}

// ReadBenchRecords loads the trajectory at path; a missing file is an
// empty trajectory, not an error.
func ReadBenchRecords(path string) ([]BenchRecord, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var records []BenchRecord
	if err := json.Unmarshal(data, &records); err != nil {
		return nil, fmt.Errorf("bench trajectory %s is not a record array: %w", path, err)
	}
	return records, nil
}

// lastWith walks the trajectory backwards for the most recent record
// matching rec's host shape (goos/goarch/cpu count — wall-clock
// comparisons across different hosts are noise) that also satisfies has:
// "this record actually measured the metric in question". Records from
// load- or security-only passes carry only their own section, so each
// metric must find its own predecessor instead of comparing against a
// neighbour's unset zeroes.
func lastWith(records []BenchRecord, rec *BenchRecord, has func(*BenchRecord) bool) *BenchRecord {
	for i := len(records) - 1; i >= 0; i-- {
		r := &records[i]
		if r.GOOS == rec.GOOS && r.GOARCH == rec.GOARCH && r.CPUs == rec.CPUs && has(r) {
			return r
		}
	}
	return nil
}

// TrajectoryWarnings compares a fresh record's host-side measurements
// against the most recent comparable prior datapoints and returns one
// warning line per metric that regressed by more than threshold (a
// fraction: 0.25 warns beyond +25%). Each metric walks back to the last
// same-host record that actually measured it, so interleaved partial
// records (a load-only rstiload datapoint, a security-only pass) neither
// mask regressions nor fabricate them from unset zero fields. Nil means
// nothing regressed or no metric had a comparable prior record.
func TrajectoryWarnings(records []BenchRecord, rec *BenchRecord, threshold float64) []string {
	var warns []string
	if prev := lastWith(records, rec, func(r *BenchRecord) bool {
		return len(r.PipelineStageNsPerOp) > 0
	}); prev != nil {
		stages := make([]string, 0, len(rec.PipelineStageNsPerOp))
		for st := range rec.PipelineStageNsPerOp {
			stages = append(stages, st)
		}
		sort.Strings(stages)
		for _, st := range stages {
			now := rec.PipelineStageNsPerOp[st]
			was, ok := prev.PipelineStageNsPerOp[st]
			if !ok || was <= 0 {
				continue
			}
			if now > was*(1+threshold) {
				warns = append(warns, fmt.Sprintf(
					"pipeline stage %q regressed %.0f%% vs %q: %.2f ms -> %.2f ms",
					st, (now/was-1)*100, prev.Label, was/1e6, now/1e6))
			}
		}
	}
	// Fused-dispatch throughput is a host-side hot path like the pipeline
	// stages: a drop beyond threshold means the superinstruction fast path
	// (or the interpreter around it) regressed.
	if prev := lastWith(records, rec, func(r *BenchRecord) bool {
		return r.PACDenseInstrsPerSec > 0
	}); prev != nil && rec.PACDenseInstrsPerSec > 0 &&
		rec.PACDenseInstrsPerSec < prev.PACDenseInstrsPerSec*(1-threshold) {
		warns = append(warns, fmt.Sprintf(
			"pac-dense fused throughput regressed %.0f%% vs %q: %.1f -> %.1f M instrs/s",
			(1-rec.PACDenseInstrsPerSec/prev.PACDenseInstrsPerSec)*100, prev.Label,
			prev.PACDenseInstrsPerSec/1e6, rec.PACDenseInstrsPerSec/1e6))
	}
	// Tiered throughput guards the direct-threaded fast path the same way:
	// tier 1 exists only to be faster, so a drop beyond threshold means the
	// closure chains, the batched accounting, or the promotion heuristic
	// regressed.
	if prev := lastWith(records, rec, func(r *BenchRecord) bool {
		return r.TieredInstrsPerSec > 0
	}); prev != nil && rec.TieredInstrsPerSec > 0 &&
		rec.TieredInstrsPerSec < prev.TieredInstrsPerSec*(1-threshold) {
		warns = append(warns, fmt.Sprintf(
			"tiered throughput regressed %.0f%% vs %q: %.1f -> %.1f M instrs/s",
			(1-rec.TieredInstrsPerSec/prev.TieredInstrsPerSec)*100, prev.Label,
			prev.TieredInstrsPerSec/1e6, rec.TieredInstrsPerSec/1e6))
	}
	// Service throughput: only comparable when the drive shape matches
	// (same sessions/concurrency/workers), since throughput scales with
	// all three.
	if rec.LoadTest != nil {
		prev := lastWith(records, rec, func(r *BenchRecord) bool {
			return r.LoadTest != nil &&
				r.LoadTest.Sessions == rec.LoadTest.Sessions &&
				r.LoadTest.Concurrency == rec.LoadTest.Concurrency &&
				r.LoadTest.Workers == rec.LoadTest.Workers &&
				r.LoadTest.RequestsPerSec > 0
		})
		if prev != nil &&
			rec.LoadTest.RequestsPerSec < prev.LoadTest.RequestsPerSec*(1-threshold) {
			warns = append(warns, fmt.Sprintf(
				"service load-test throughput regressed %.0f%% vs %q: %.1f -> %.1f req/s",
				(1-rec.LoadTest.RequestsPerSec/prev.LoadTest.RequestsPerSec)*100, prev.Label,
				prev.LoadTest.RequestsPerSec, rec.LoadTest.RequestsPerSec))
		}
	}
	// Elision effectiveness is deterministic per build: a relative drop
	// means the optimizer lost coverage, not host noise.
	if prev := lastWith(records, rec, func(r *BenchRecord) bool {
		return len(r.PACOpsElidedPct) > 0
	}); prev != nil {
		mechs := make([]string, 0, len(rec.PACOpsElidedPct))
		for m := range rec.PACOpsElidedPct {
			mechs = append(mechs, m)
		}
		sort.Strings(mechs)
		for _, m := range mechs {
			was, ok := prev.PACOpsElidedPct[m]
			if !ok || was <= 0 {
				continue
			}
			if now := rec.PACOpsElidedPct[m]; now < was*(1-threshold) {
				warns = append(warns, fmt.Sprintf(
					"PAC elision under %s dropped from %.1f%% to %.1f%% of dynamic PAC ops vs %q",
					m, was, now, prev.Label))
			}
		}
	}
	// Steady-state memory behaviour: allocs/bytes per run are pinned at
	// zero by the execution-core contract, so the walk-back is strict —
	// against a zero baseline ANY reintroduced allocation warns (the
	// threshold-scaled band around zero is zero), and against a nonzero
	// baseline the usual +threshold band applies. GC pause only compares
	// when the baseline actually saw collections; a first pause against a
	// pause-free baseline is already caught by the alloc/bytes guards.
	if rec.Mem != nil {
		if prev := lastWith(records, rec, func(r *BenchRecord) bool {
			return r.Mem != nil
		}); prev != nil {
			if rec.Mem.AllocsPerRun > prev.Mem.AllocsPerRun*(1+threshold) {
				warns = append(warns, fmt.Sprintf(
					"steady-state allocs/run regressed vs %q: %.2f -> %.2f",
					prev.Label, prev.Mem.AllocsPerRun, rec.Mem.AllocsPerRun))
			}
			if rec.Mem.TierAllocsPerRun > prev.Mem.TierAllocsPerRun*(1+threshold) {
				warns = append(warns, fmt.Sprintf(
					"steady-state tier allocs/run regressed vs %q: %.2f -> %.2f",
					prev.Label, prev.Mem.TierAllocsPerRun, rec.Mem.TierAllocsPerRun))
			}
			if rec.Mem.BytesPerRun > prev.Mem.BytesPerRun*(1+threshold) {
				warns = append(warns, fmt.Sprintf(
					"steady-state bytes/run regressed vs %q: %.1f -> %.1f",
					prev.Label, prev.Mem.BytesPerRun, rec.Mem.BytesPerRun))
			}
			if prev.Mem.GCPauseP99Ns > 0 &&
				rec.Mem.GCPauseP99Ns > prev.Mem.GCPauseP99Ns*(1+threshold) {
				warns = append(warns, fmt.Sprintf(
					"GC pause p99 regressed %.0f%% vs %q: %.0f µs -> %.0f µs",
					(rec.Mem.GCPauseP99Ns/prev.Mem.GCPauseP99Ns-1)*100, prev.Label,
					prev.Mem.GCPauseP99Ns/1e3, rec.Mem.GCPauseP99Ns/1e3))
			}
		}
	}
	// Cluster cache sharing is deterministic for a fixed drive shape: a
	// drop means the ring, the peer fetch path, or artifact adoption broke.
	if rec.ClusterLoad != nil {
		prev := lastWith(records, rec, func(r *BenchRecord) bool {
			return r.ClusterLoad != nil &&
				r.ClusterLoad.Peers == rec.ClusterLoad.Peers &&
				r.ClusterLoad.Sessions == rec.ClusterLoad.Sessions &&
				r.ClusterLoad.Programs == rec.ClusterLoad.Programs &&
				r.ClusterLoad.CacheShareRate > 0
		})
		if prev != nil &&
			rec.ClusterLoad.CacheShareRate < prev.ClusterLoad.CacheShareRate*(1-threshold) {
			warns = append(warns, fmt.Sprintf(
				"cluster cache-share rate dropped from %.1f%% to %.1f%% vs %q",
				prev.ClusterLoad.CacheShareRate*100, rec.ClusterLoad.CacheShareRate*100, prev.Label))
		}
	}
	return warns
}

// AppendBenchRecord appends rec to the JSON trajectory at path (created if
// absent), keeping all previous datapoints.
func AppendBenchRecord(path string, rec *BenchRecord) error {
	records, err := ReadBenchRecords(path)
	if err != nil {
		return err
	}
	records = append(records, *rec)
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Summary renders the record as a human-readable report.
func (r *BenchRecord) Summary() string {
	eng := ""
	for _, p := range r.EngineThroughput {
		eng += fmt.Sprintf("\n  engine %d worker(s):   %8.1f M instrs/s (bit-identical: %v)",
			p.Workers, p.InstrsPerSec/1e6, p.BitIdentical)
	}
	if len(r.EngineThroughput) > 0 {
		eng += fmt.Sprintf("\n  engine scaling:       %8.2f x over 1 worker (%d cpus)",
			r.EngineScalingOver1, r.CPUs)
	}
	compile := ""
	if r.Build3SerialNsPerOp > 0 {
		compile = fmt.Sprintf(
			"\n  compile cache:        %8.2f pct hits, warm get %.1f µs"+
				"\n  3-mech build:         %8.2f ms serial, %.2f ms parallel",
			r.CompileCacheHitRate*100, r.CompileCacheWarmNsPerOp/1e3,
			r.Build3SerialNsPerOp/1e6, r.Build3ParallelNsPerOp/1e6)
	}
	tier := ""
	if r.TieredInstrsPerSec > 0 {
		ratio := 0.0
		if r.InterpreterInstrsPerSec > 0 {
			ratio = r.TieredInstrsPerSec / r.InterpreterInstrsPerSec
		}
		tier = fmt.Sprintf(
			"\n  tiered execution:     %8.1f M instrs/s (%.2fx tier 0, %d promotions, bit-identical: %v)",
			r.TieredInstrsPerSec/1e6, ratio, r.TierPromotions, r.TierBitIdentical)
	}
	pac := ""
	if len(r.PACOpsElidedPct) > 0 {
		pac = fmt.Sprintf(
			"\n  pac ops elided:       STWC %.1f%%  STC %.1f%%  STL %.1f%%  Adaptive %.1f%%"+
				"\n  pac-dense fused:      %8.1f M instrs/s (%.0f%% of instrs fused)",
			r.PACOpsElidedPct[sti.STWC.String()], r.PACOpsElidedPct[sti.STC.String()],
			r.PACOpsElidedPct[sti.STL.String()], r.PACOpsElidedPct[sti.Adaptive.String()],
			r.PACDenseInstrsPerSec/1e6, r.PACDenseFusedShare*100)
	}
	mem := ""
	if r.Mem != nil {
		mem = "\n" + r.Mem.Summary()
	}
	load := ""
	if r.LoadTest != nil {
		load = "\n" + r.LoadTest.Summary()
	}
	// compile, eng and pac are appended outside the format string: they are
	// already-rendered text, and Sprintf must not re-scan them for verbs.
	return fmt.Sprintf(
		"bench trajectory datapoint %q (%s, %s/%s, %d cpus)\n"+
			"  qarma encrypt:        %8.1f ns/op\n"+
			"  pac sign (warm):      %8.1f ns/op\n"+
			"  frontend:             %8.2f ms\n"+
			"  lower:                %8.2f ms\n"+
			"  analyze:              %8.2f ms\n"+
			"  instrument:           %8.2f ms\n"+
			"  interpreter:          %8.1f M instrs/s\n"+
			"  pac cache hit rate:   %8.2f %%\n"+
			"  figure 9 wall clock:  %8.1f s\n"+
			"  figure 9 geomeans:    STWC %.3f%%  STC %.3f%%  STL %.3f%%",
		r.Label, r.GoVersion, r.GOOS, r.GOARCH, r.CPUs,
		r.QarmaEncryptNsPerOp,
		r.PACSignWarmNsPerOp,
		r.PipelineStageNsPerOp["frontend"]/1e6,
		r.PipelineStageNsPerOp["lower"]/1e6,
		r.PipelineStageNsPerOp["analyze"]/1e6,
		r.PipelineStageNsPerOp["instrument"]/1e6,
		r.InterpreterInstrsPerSec/1e6,
		r.PACCacheHitRate*100,
		r.Figure9WallSeconds,
		r.Figure9GeomeanPct[sti.STWC.String()],
		r.Figure9GeomeanPct[sti.STC.String()],
		r.Figure9GeomeanPct[sti.STL.String()]) + tier + compile + eng + pac + mem + load
}

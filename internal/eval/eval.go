// Package eval drives the paper's evaluation: it runs the workload suites
// under every mechanism and reproduces each table and figure of §6. Both
// cmd/rstibench and the repository's testing.B benchmarks call into it.
package eval

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"rsti/internal/attack"
	"rsti/internal/core"
	"rsti/internal/engine"
	"rsti/internal/report"
	"rsti/internal/sti"
	"rsti/internal/workload"
)

// OverheadRow is one benchmark's measured overheads (fractions, not
// percent) under each protected mechanism, relative to the uninstrumented
// baseline.
type OverheadRow struct {
	Suite, Name string
	BaseCycles  int64
	Overhead    map[sti.Mechanism]float64
	PACOps      map[sti.Mechanism]int64
	MemOps      int64 // baseline loads+stores, for the correlation analysis
}

// MeasureBenchmark compiles and runs one benchmark under None plus the
// given mechanisms, executing every run inline on the caller.
func MeasureBenchmark(b *workload.Benchmark, mechs []sti.Mechanism) (*OverheadRow, error) {
	c, err := core.Compile(b.Source)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", b.Suite, b.Name, err)
	}
	return measureBenchmark(b, mechs, func(mech sti.Mechanism) (*core.RunResult, error) {
		return c.Run(mech, core.RunConfig{})
	})
}

// measureBenchmark builds one overhead row, delegating each run to run —
// either an inline execution or an engine submission.
func measureBenchmark(b *workload.Benchmark, mechs []sti.Mechanism, run func(sti.Mechanism) (*core.RunResult, error)) (*OverheadRow, error) {
	base, err := run(sti.None)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", b.Suite, b.Name, err)
	}
	if base.Err != nil {
		return nil, fmt.Errorf("%s/%s baseline: %w", b.Suite, b.Name, base.Err)
	}
	row := &OverheadRow{
		Suite: b.Suite, Name: b.Name,
		BaseCycles: base.Stats.Cycles,
		Overhead:   make(map[sti.Mechanism]float64),
		PACOps:     make(map[sti.Mechanism]int64),
		MemOps:     base.Stats.Loads + base.Stats.Stores,
	}
	for _, mech := range mechs {
		res, err := run(mech)
		if err != nil {
			return nil, err
		}
		if res.Err != nil {
			return nil, fmt.Errorf("%s/%s under %s: %w", b.Suite, b.Name, mech, res.Err)
		}
		if res.Exit != base.Exit {
			return nil, fmt.Errorf("%s/%s under %s: exit %d differs from baseline %d",
				b.Suite, b.Name, mech, res.Exit, base.Exit)
		}
		row.Overhead[mech] = core.Overhead(base, res)
		row.PACOps[mech] = res.Stats.PACOps() + res.Stats.PPOps
	}
	return row, nil
}

// Figure9 holds the full overhead measurement: per-benchmark rows for
// every suite plus per-suite and overall geometric means.
type Figure9 struct {
	Rows     map[string][]*OverheadRow // suite -> rows
	Geomeans map[string]map[sti.Mechanism]float64
	Overall  map[sti.Mechanism]float64
}

// MeasureFigure9 runs every suite under the three RSTI mechanisms,
// driving every execution through a dedicated engine worker pool. Each
// run gets its own Machine and the cycle model is deterministic, so the
// engine changes nothing but wall-clock time.
func MeasureFigure9() (*Figure9, error) {
	eng := engine.New(engine.Config{Workers: runtime.NumCPU()})
	defer eng.Close()
	return MeasureFigure9On(eng)
}

// MeasureFigure9On drives the Figure 9 sweep through an existing engine,
// sharing its bounded worker pool — and the warm per-worker machine state
// — with whatever else that engine is serving. Compilations go through
// the pool too (via SubmitFunc), so total CPU admission is governed by
// one queue.
func MeasureFigure9On(eng *engine.Engine) (*Figure9, error) {
	f := &Figure9{
		Rows:     make(map[string][]*OverheadRow),
		Geomeans: make(map[string]map[sti.Mechanism]float64),
		Overall:  make(map[sti.Mechanism]float64),
	}
	type job struct {
		suite string
		idx   int
		bench *workload.Benchmark
	}
	var jobs []job
	for suite, benches := range workload.AllSuites() {
		f.Rows[suite] = make([]*OverheadRow, len(benches))
		for i, b := range benches {
			jobs = append(jobs, job{suite, i, b})
		}
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	ctx := context.Background()
	for _, j := range jobs {
		wg.Add(1)
		// Coordinator goroutines hold no worker while they wait, so the
		// submit-compile-then-submit-runs sequence cannot deadlock the pool.
		go func(j job) {
			defer wg.Done()
			var c *core.Compilation
			err := eng.SubmitFunc(ctx, func(context.Context) error {
				var cerr error
				c, cerr = compileCached(j.bench.Source)
				return cerr
			})
			var row *OverheadRow
			if err == nil {
				row, err = measureBenchmark(j.bench, sti.RSTIMechanisms,
					func(mech sti.Mechanism) (*core.RunResult, error) {
						return eng.Submit(ctx, engine.Job{Comp: c, Mech: mech})
					})
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			f.Rows[j.suite][j.idx] = row
		}(j)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	var all []*OverheadRow
	for _, rows := range f.Rows {
		all = append(all, rows...)
	}
	for suite, rows := range f.Rows {
		f.Geomeans[suite] = geomeans(rows)
	}
	f.Overall = geomeans(all)
	return f, nil
}

func geomeans(rows []*OverheadRow) map[sti.Mechanism]float64 {
	out := make(map[sti.Mechanism]float64)
	for _, mech := range sti.RSTIMechanisms {
		var xs []float64
		for _, r := range rows {
			xs = append(xs, r.Overhead[mech])
		}
		out[mech] = report.Geomean(xs)
	}
	return out
}

// RenderFigure9 formats the Figure 9 reproduction: per-benchmark SPEC2017
// overheads plus the per-suite and overall geomeans, with the paper's
// reported geomeans alongside.
func (f *Figure9) RenderFigure9() string {
	t := &report.Table{
		Title:   "Figure 9 — performance overhead (reproduced vs paper geomeans)",
		Headers: []string{"benchmark", "RSTI-STWC", "RSTI-STC", "RSTI-STL"},
	}
	for _, r := range f.Rows["SPEC2017"] {
		t.Add(r.Name,
			report.Percent(r.Overhead[sti.STWC]),
			report.Percent(r.Overhead[sti.STC]),
			report.Percent(r.Overhead[sti.STL]))
	}
	for _, suite := range workload.SuiteOrder {
		g := f.Geomeans[suite]
		t.Add("Geomean-"+suite,
			report.Percent(g[sti.STWC]), report.Percent(g[sti.STC]), report.Percent(g[sti.STL]))
	}
	t.Add("Geomean-all",
		report.Percent(f.Overall[sti.STWC]),
		report.Percent(f.Overall[sti.STC]),
		report.Percent(f.Overall[sti.STL]))

	p := &report.Table{
		Title:   "\nPaper-reported geomeans for comparison",
		Headers: []string{"suite", "RSTI-STWC", "RSTI-STC", "RSTI-STL"},
	}
	for _, suite := range append(append([]string{}, workload.SuiteOrder...), "all") {
		g, ok := workload.PaperGeomeans[suite]
		if !ok {
			continue
		}
		p.Add(suite,
			fmt.Sprintf("%.2f%%", g[sti.STWC]),
			fmt.Sprintf("%.2f%%", g[sti.STC]),
			fmt.Sprintf("%.2f%%", g[sti.STL]))
	}
	return t.String() + p.String()
}

// RenderFigure10 formats the box-plot summaries (min, quartiles, median,
// max) for the three suites Figure 10 plots.
func (f *Figure9) RenderFigure10() string {
	t := &report.Table{
		Title:   "Figure 10 — overhead distributions (five-number summaries)",
		Headers: []string{"suite", "mechanism", "min", "q1", "median", "q3", "max"},
	}
	for _, suite := range []string{"SPEC2006", "nbench", "CPython"} {
		for _, mech := range sti.RSTIMechanisms {
			var xs []float64
			for _, r := range f.Rows[suite] {
				xs = append(xs, r.Overhead[mech])
			}
			s := report.Summarize(xs)
			t.Add(suite, mech.String(),
				report.Percent(s.Min), report.Percent(s.Q1), report.Percent(s.Median),
				report.Percent(s.Q3), report.Percent(s.Max))
		}
	}
	return t.String()
}

// Pearson computes the correlation between baseline memory-operation
// counts and STWC overheads across rows — the paper's §6.3.2 observation
// (0.75–0.8 on SPEC2006).
func Pearson(rows []*OverheadRow, mech sti.Mechanism) float64 {
	n := float64(len(rows))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, syy, sxy float64
	for _, r := range rows {
		x := float64(r.PACOps[mech])
		y := r.Overhead[mech]
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	num := n*sxy - sx*sy
	den := (n*sxx - sx*sx) * (n*syy - sy*sy)
	if den <= 0 {
		return 0
	}
	return num / math.Sqrt(den)
}

// Table3Entry is one reproduced Table 3 row next to the paper's.
type Table3Entry struct {
	Name     string
	Measured sti.EquivStats
	Paper    workload.Table3Row
	PPTotal  int
	PPCE     int
}

// MeasureTable3 analyzes the full-size SPEC2006 static programs and
// computes the equivalence-class statistics plus the §6.2.2
// pointer-to-pointer census. The per-benchmark compile+analysis work is
// fanned out across an engine worker pool via SubmitFunc; results are
// shared with the other static-analysis measurements through
// compileCached, so repeated sweeps stay cheap.
func MeasureTable3() ([]Table3Entry, error) {
	eng := engine.New(engine.Config{Workers: runtime.NumCPU()})
	defer eng.Close()
	benches := workload.SPEC2006Static()
	out := make([]Table3Entry, len(benches))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i, b := range benches {
		wg.Add(1)
		go func(i int, b *workload.Benchmark) {
			defer wg.Done()
			err := eng.SubmitFunc(context.Background(), func(context.Context) error {
				c, cerr := compileCached(b.Source)
				if cerr != nil {
					return fmt.Errorf("%s: %w", b.Name, cerr)
				}
				out[i] = Table3Entry{
					Name:     b.Name,
					Measured: c.Analysis.Equivalence(),
					Paper:    b.PaperTable3,
					PPTotal:  c.Analysis.PPTotalSites,
					PPCE:     len(c.Analysis.PPSpecial),
				}
				return nil
			})
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(i, b)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// RenderTable3 formats the reproduction next to the published values.
func RenderTable3(entries []Table3Entry) string {
	t := &report.Table{
		Title: "Table 3 — SPEC2006 equivalence classes (measured | paper)",
		Headers: []string{"BM", "NT", "RT-STC", "RT-STWC", "NV",
			"ECV-STC", "ECV-STWC", "ECT-STC", "ECT-STWC"},
	}
	both := func(m, p int) string { return fmt.Sprintf("%d|%d", m, p) }
	for _, e := range entries {
		t.Add(e.Name,
			both(e.Measured.NT, e.Paper.NT),
			both(e.Measured.RTSTC, e.Paper.RTSTC),
			both(e.Measured.RTSTWC, e.Paper.RTSTWC),
			both(e.Measured.NV, e.Paper.NV),
			both(e.Measured.LargestECVSTC, e.Paper.ECVSTC),
			both(e.Measured.LargestECVSTWC, e.Paper.ECVSTWC),
			both(e.Measured.LargestECTSTC, e.Paper.ECTSTC),
			both(e.Measured.LargestECTSTWC, e.Paper.ECTSTWC))
	}
	return t.String()
}

// RenderPPCensus formats the §6.2.2 pointer-to-pointer census across the
// SPEC2006 static suite.
func RenderPPCensus(entries []Table3Entry) string {
	t := &report.Table{
		Title:   "§6.2.2 — pointer-to-pointer census (SPEC2006; paper: 7489 sites, 25 special)",
		Headers: []string{"BM", "pp sites", "CE/FE sites"},
	}
	total, special := 0, 0
	for _, e := range entries {
		t.Add(e.Name, fmt.Sprintf("%d", e.PPTotal), fmt.Sprintf("%d", e.PPCE))
		total += e.PPTotal
		special += e.PPCE
	}
	t.Add("TOTAL", fmt.Sprintf("%d", total), fmt.Sprintf("%d", special))
	return t.String()
}

// Table1Result is the attack matrix.
type Table1Result struct {
	Rows []Table1Row
}

// Table1Row is one attack's outcome under every mechanism.
type Table1Row struct {
	Scenario *attack.Scenario
	Baseline *attack.Outcome
	Results  map[sti.Mechanism]*attack.Outcome
}

// MeasureTable1 runs the whole Table 1 matrix.
func MeasureTable1() (*Table1Result, error) {
	res := &Table1Result{}
	for _, s := range attack.Scenarios() {
		row := Table1Row{Scenario: s, Results: make(map[sti.Mechanism]*attack.Outcome)}
		base, err := s.Run(sti.None)
		if err != nil {
			return nil, err
		}
		row.Baseline = base
		for _, mech := range []sti.Mechanism{sti.PARTS, sti.STWC, sti.STC, sti.STL} {
			out, err := s.Run(mech)
			if err != nil {
				return nil, err
			}
			row.Results[mech] = out
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the Table 1 reproduction.
func (r *Table1Result) Render() string {
	t := &report.Table{
		Title: "Table 1 — attack matrix (✓ = detected, ✗ = attack succeeded)",
		Headers: []string{"attack", "kind", "baseline", "PARTS",
			"STWC", "STC", "STL"},
	}
	mark := func(o *attack.Outcome) string {
		switch {
		case o.Detected:
			return "✓ detected"
		case o.Succeeded:
			return "✗ succeeded"
		default:
			return "- no effect"
		}
	}
	for _, row := range r.Rows {
		kind := "(S)"
		if row.Scenario.RealWorld {
			kind = "(R)"
		}
		t.Add(row.Scenario.Name, row.Scenario.Category+" "+kind,
			mark(row.Baseline),
			mark(row.Results[sti.PARTS]),
			mark(row.Results[sti.STWC]),
			mark(row.Results[sti.STC]),
			mark(row.Results[sti.STL]))
	}
	return t.String()
}

// PARTSComparison measures the §6.3.2 nbench comparison: PARTS vs the
// three RSTI mechanisms.
type PARTSComparison struct {
	Rows      []*OverheadRow // nbench rows incl. PARTS overheads
	MeanPARTS float64
	MeanSTWC  float64
	MeanSTC   float64
	MeanSTL   float64
}

// MeasurePARTSComparison runs nbench under PARTS and RSTI.
func MeasurePARTSComparison() (*PARTSComparison, error) {
	mechs := []sti.Mechanism{sti.PARTS, sti.STWC, sti.STC, sti.STL}
	var rows []*OverheadRow
	for _, b := range workload.NBench() {
		row, err := MeasureBenchmark(b, mechs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	mean := func(mech sti.Mechanism) float64 {
		var xs []float64
		for _, r := range rows {
			xs = append(xs, r.Overhead[mech])
		}
		return report.Mean(xs)
	}
	return &PARTSComparison{
		Rows:      rows,
		MeanPARTS: mean(sti.PARTS),
		MeanSTWC:  mean(sti.STWC),
		MeanSTC:   mean(sti.STC),
		MeanSTL:   mean(sti.STL),
	}, nil
}

// Render formats the PARTS comparison with the paper's numbers.
func (p *PARTSComparison) Render() string {
	t := &report.Table{
		Title:   "§6.3.2 — nbench: PARTS vs RSTI (paper: PARTS 19.5%, RSTI 1.54/0.52/2.78%)",
		Headers: []string{"benchmark", "PARTS", "STWC", "STC", "STL"},
	}
	sort.Slice(p.Rows, func(i, j int) bool { return p.Rows[i].Name < p.Rows[j].Name })
	for _, r := range p.Rows {
		t.Add(r.Name,
			report.Percent(r.Overhead[sti.PARTS]),
			report.Percent(r.Overhead[sti.STWC]),
			report.Percent(r.Overhead[sti.STC]),
			report.Percent(r.Overhead[sti.STL]))
	}
	t.Add("MEAN",
		report.Percent(p.MeanPARTS), report.Percent(p.MeanSTWC),
		report.Percent(p.MeanSTC), report.Percent(p.MeanSTL))
	return t.String()
}

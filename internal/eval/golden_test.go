package eval

import (
	"testing"

	"rsti/internal/core"
	"rsti/internal/sti"
	"rsti/internal/workload"
)

// goldenCycles pins the modelled cycle counts of two fixed workloads under
// every mechanism. These values are the repo's reported numbers: host-side
// performance work (cipher fast paths, PAC memoization, interpreter
// pooling/predecode) must never move them. If this test fails, an
// "optimization" changed modelled behaviour, not just host speed.
var goldenCycles = []struct {
	suite, name string
	pick        func() *workload.Benchmark
	want        map[sti.Mechanism]int64
}{
	{
		suite: "SPEC2017", name: "500.perlbench_r",
		pick: func() *workload.Benchmark { return workload.SPEC2017()[0] },
		want: map[sti.Mechanism]int64{
			sti.None: 2299402, sti.STWC: 2710120,
			sti.STC: 2590092, sti.STL: 2860432,
		},
	},
	{
		suite: "nbench", name: "numeric-sort",
		pick: func() *workload.Benchmark { return workload.NBench()[0] },
		want: map[sti.Mechanism]int64{
			// numeric-sort is pointer-free at the instrumentation sites, so
			// every mechanism costs the same modelled cycles.
			sti.None: 10409068, sti.STWC: 10409068,
			sti.STC: 10409068, sti.STL: 10409068,
		},
	},
}

func TestGoldenCyclesBitIdentical(t *testing.T) {
	// The pinned values are measured on unoptimized builds; force the
	// optimizer off so the test means the same thing under a CI leg that
	// sets RSTI_OPT=1. TestGoldenCyclesOptimized pins the optimized twin.
	for _, g := range goldenCycles {
		b := g.pick()
		if b.Name != g.name || b.Suite != g.suite {
			t.Fatalf("workload order changed: got %s/%s, want %s/%s",
				b.Suite, b.Name, g.suite, g.name)
		}
		c, err := core.Compile(b.Source)
		if err != nil {
			t.Fatalf("%s: %v", g.name, err)
		}
		for _, mech := range []sti.Mechanism{sti.None, sti.STWC, sti.STC, sti.STL} {
			res, err := c.Run(mech, core.RunConfig{Optimize: core.OptimizeOff})
			if err != nil {
				t.Fatalf("%s under %s: %v", g.name, mech, err)
			}
			if res.Err != nil {
				t.Fatalf("%s under %s trapped: %v", g.name, mech, res.Err)
			}
			if res.Stats.Cycles != g.want[mech] {
				t.Errorf("%s under %s: modelled cycles = %d, golden = %d",
					g.name, mech, res.Stats.Cycles, g.want[mech])
			}
		}
	}
}

// goldenCyclesOptimized pins the same workloads' modelled cycles with the
// PAC elision optimizer forced on. Two invariants ride on these numbers:
// the optimizer's output is deterministic, and it never executes more
// cycles than the unoptimized build (the per-case assertions below).
var goldenCyclesOptimized = []struct {
	suite, name string
	pick        func() *workload.Benchmark
	want        map[sti.Mechanism]int64
}{
	{
		suite: "SPEC2017", name: "500.perlbench_r",
		pick: func() *workload.Benchmark { return workload.SPEC2017()[0] },
		want: map[sti.Mechanism]int64{
			sti.None: 2299402, sti.STWC: 2649694,
			sti.STC: 2589694, sti.STL: 2779918,
		},
	},
	{
		suite: "nbench", name: "numeric-sort",
		pick: func() *workload.Benchmark { return workload.NBench()[0] },
		want: map[sti.Mechanism]int64{
			sti.None: 10409068, sti.STWC: 10409068,
			sti.STC: 10409068, sti.STL: 10409068,
		},
	},
}

func TestGoldenCyclesOptimized(t *testing.T) {
	for _, g := range goldenCyclesOptimized {
		b := g.pick()
		if b.Name != g.name || b.Suite != g.suite {
			t.Fatalf("workload order changed: got %s/%s, want %s/%s",
				b.Suite, b.Name, g.suite, g.name)
		}
		c, err := core.Compile(b.Source)
		if err != nil {
			t.Fatalf("%s: %v", g.name, err)
		}
		for _, mech := range []sti.Mechanism{sti.None, sti.STWC, sti.STC, sti.STL} {
			off, err := c.Run(mech, core.RunConfig{Optimize: core.OptimizeOff})
			if err != nil {
				t.Fatalf("%s under %s (off): %v", g.name, mech, err)
			}
			on, err := c.Run(mech, core.RunConfig{Optimize: core.OptimizeOn})
			if err != nil {
				t.Fatalf("%s under %s (on): %v", g.name, mech, err)
			}
			if on.Err != nil {
				t.Fatalf("%s under %s trapped with optimizer on: %v", g.name, mech, on.Err)
			}
			if on.Exit != off.Exit || on.Output != off.Output {
				t.Errorf("%s under %s: optimizer changed observable behaviour", g.name, mech)
			}
			if on.Stats.Cycles > off.Stats.Cycles {
				t.Errorf("%s under %s: optimizer increased cycles: %d > %d",
					g.name, mech, on.Stats.Cycles, off.Stats.Cycles)
			}
			if on.Stats.Cycles != g.want[mech] {
				t.Errorf("%s under %s: optimized cycles = %d, golden = %d",
					g.name, mech, on.Stats.Cycles, g.want[mech])
			}
		}
	}
}

// TestCompileCacheSharesCompilation checks the source-keyed cache returns
// the same Compilation for the same source and that its analysis matches a
// fresh compile.
func TestCompileCacheSharesCompilation(t *testing.T) {
	src := workload.SPEC2006Static()[0].Source
	c1, err := compileCached(src)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := compileCached(src)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("compileCached returned distinct Compilations for identical source")
	}
	fresh, err := core.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(c1.Analysis.Types), len(fresh.Analysis.Types); got != want {
		t.Errorf("cached analysis has %d runtime types, fresh compile has %d", got, want)
	}
}

package eval

// Engine throughput benchmark: drive the Figure 9 workload through
// internal/engine at a sweep of worker counts and record aggregate
// modelled-instruction throughput. Two things are being measured:
//
//   - Scaling: how wall-clock throughput grows with workers. On a
//     multi-core host the modelled runs are embarrassingly parallel, so
//     throughput should grow near-linearly until the host runs out of
//     cores (the sweep records the host CPU count so a 1-CPU container's
//     flat curve is interpretable).
//
//   - Determinism: the engine's per-worker state reuse must not move a
//     single modelled number. Every point cross-checks each run's cycles
//     and exit code against a sequential single-threaded reference and
//     records the verdict in BitIdentical.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"rsti/internal/core"
	"rsti/internal/engine"
	"rsti/internal/sti"
	"rsti/internal/workload"
)

// EngineThroughputPoint is the measured engine throughput at one worker
// count.
type EngineThroughputPoint struct {
	Workers         int     `json:"workers"`
	Jobs            int     `json:"jobs"`
	WallSeconds     float64 `json:"wall_seconds"`
	Instrs          int64   `json:"instrs"`
	InstrsPerSec    float64 `json:"instrs_per_sec"`
	PACCacheHitRate float64 `json:"pac_cache_hit_rate"`
	// BitIdentical reports whether every run's modelled cycles and exit
	// code matched the sequential reference pass.
	BitIdentical bool `json:"bit_identical"`
}

// ScalingOver1 is the throughput of the best point relative to the
// 1-worker point (1.0 when no 1-worker point or no speedup).
func ScalingOver1(points []EngineThroughputPoint) float64 {
	var base, best float64
	for _, p := range points {
		if p.Workers == 1 {
			base = p.InstrsPerSec
		}
		if p.InstrsPerSec > best {
			best = p.InstrsPerSec
		}
	}
	if base <= 0 {
		return 1
	}
	return best / base
}

// engineJob is one (program, mechanism) execution of the throughput
// workload, with its reference outcome.
type engineJob struct {
	name      string
	comp      *core.Compilation
	mech      sti.Mechanism
	refCycles int64
	refExit   int64
}

// MeasureEngineThroughput sweeps the engine over workerCounts on the full
// Figure 9 workload (every suite × baseline + the three RSTI mechanisms).
func MeasureEngineThroughput(workerCounts []int) ([]EngineThroughputPoint, error) {
	var benches []*workload.Benchmark
	for _, bs := range workload.AllSuites() {
		benches = append(benches, bs...)
	}
	return measureEngineThroughput(benches, workerCounts)
}

// measureEngineThroughput builds the job list from benches, runs the
// sequential reference pass, then measures one engine pass per worker
// count.
func measureEngineThroughput(benches []*workload.Benchmark, workerCounts []int) ([]EngineThroughputPoint, error) {
	mechs := append([]sti.Mechanism{sti.None}, sti.RSTIMechanisms...)
	var jobs []*engineJob
	for _, b := range benches {
		c, err := compileCached(b.Source)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", b.Suite, b.Name, err)
		}
		// Warm the per-mechanism build cache outside the timed region so
		// every pass measures pure execution, then record the sequential
		// reference outcome.
		for _, mech := range mechs {
			res, err := c.Run(mech, core.RunConfig{})
			if err != nil {
				return nil, err
			}
			if res.Err != nil {
				return nil, fmt.Errorf("%s/%s under %s: %w", b.Suite, b.Name, mech, res.Err)
			}
			jobs = append(jobs, &engineJob{
				name:      b.Suite + "/" + b.Name,
				comp:      c,
				mech:      mech,
				refCycles: res.Stats.Cycles,
				refExit:   res.Exit,
			})
		}
	}

	var points []EngineThroughputPoint
	for _, workers := range workerCounts {
		p, err := runEnginePass(jobs, workers)
		if err != nil {
			return nil, err
		}
		points = append(points, p)
	}
	return points, nil
}

// runEnginePass executes every job once on an engine with the given
// worker count and cross-checks the outcomes against the reference.
func runEnginePass(jobs []*engineJob, workers int) (EngineThroughputPoint, error) {
	eng := engine.New(engine.Config{Workers: workers, QueueDepth: len(jobs) + 1})
	defer eng.Close()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	identical := true
	var instrs int64
	ctx := context.Background()
	start := time.Now()
	for _, j := range jobs {
		wg.Add(1)
		go func(j *engineJob) {
			defer wg.Done()
			res, err := eng.Submit(ctx, engine.Job{Comp: j.comp, Mech: j.mech})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err != nil:
				if firstErr == nil {
					firstErr = fmt.Errorf("%s under %s: %w", j.name, j.mech, err)
				}
			case res.Err != nil:
				if firstErr == nil {
					firstErr = fmt.Errorf("%s under %s: %w", j.name, j.mech, res.Err)
				}
			default:
				instrs += res.Stats.Instrs
				if res.Stats.Cycles != j.refCycles || res.Exit != j.refExit {
					identical = false
				}
			}
		}(j)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	if firstErr != nil {
		return EngineThroughputPoint{}, firstErr
	}
	st := eng.Stats()
	return EngineThroughputPoint{
		Workers:         workers,
		Jobs:            len(jobs),
		WallSeconds:     wall,
		Instrs:          instrs,
		InstrsPerSec:    float64(instrs) / wall,
		PACCacheHitRate: st.PACCacheHitRate(),
		BitIdentical:    identical,
	}, nil
}

package eval

// Security-trajectory measurement: the driver behind `rstibench -secjson`
// and the SECURITY_RESULTS.json dashboard. For every workload in the
// security suite it computes the PAC equivalence-class partition per
// mechanism (class count, size distribution, largest class, replay
// surface) and runs the attack synthesizer — deriving minimal tampers
// from the compiled program and executing each through the VM to confirm
// the predicted detect/miss outcome. A static-corpus cross-check pins the
// partition against the independently computed Table 3 equivalence
// statistics. Everything here is a deterministic function of the
// sources, so the CI guard over the resulting record is exact.

import (
	"fmt"
	"time"

	"rsti/internal/attack"
	"rsti/internal/core"
	"rsti/internal/report"
	"rsti/internal/sti"
	"rsti/internal/workload"
)

// securityMechs maps the dashboard's mechanism order onto sti values.
var securityMechs = []sti.Mechanism{sti.PARTS, sti.STWC, sti.STC, sti.Adaptive, sti.STL}

// MeasureSecurity runs the full security measurement pass over the
// security suite and the static-corpus cross-check. Synthesis runs with
// the optimizer forced off so the datapoint is independent of the
// RSTI_OPT process default; the elided-local tamper family internally
// re-executes under both optimizer modes regardless, because its
// miss guarantee is an optimizer-safety claim.
func MeasureSecurity(label string) (*report.SecurityRecord, error) {
	rec := &report.SecurityRecord{
		Label:     label,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	for _, b := range workload.SecuritySuite() {
		c, err := core.Compile(b.Source)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		ws := WorkloadSecurityFor(b.Name, c)
		synth, err := attack.Synthesize(c, attack.SynthOptions{Optimize: core.OptimizeOff})
		if err != nil {
			return nil, fmt.Errorf("%s: synthesis: %w", b.Name, err)
		}
		ws.SynthTampers = len(synth.Tampers)
		ws.SynthConfirmed = synth.Confirmed()
		ws.SynthFamilies = synth.Families()
		ws.ConfirmedDetect = synth.ConfirmedDetect
		ws.ConfirmedMiss = synth.ConfirmedMiss
		ws.SynthProblems = synth.Problems
		rec.Workloads = append(rec.Workloads, *ws)
	}

	// Table 3 cross-check: the modifier-keyed partition must reproduce
	// the independently computed equivalence statistics on the static
	// corpus (two different traversals of the same analysis).
	for _, b := range workload.SPEC2006Static() {
		c, err := compileCached(b.Source)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		eq := c.Analysis.Equivalence()
		t3 := report.Table3Check{
			Name:          b.Name,
			PartitionSTWC: c.Analysis.Partition(sti.STWC).Classes(),
			EquivSTWC:     eq.RTSTWC,
			PartitionSTC:  c.Analysis.Partition(sti.STC).Classes(),
			EquivSTC:      eq.RTSTC,
		}
		t3.OK = t3.PartitionSTWC == t3.EquivSTWC && t3.PartitionSTC == t3.EquivSTC
		rec.Table3 = append(rec.Table3, t3)
	}
	rec.Finalize()
	return rec, nil
}

// WorkloadSecurityFor computes the partition side of one workload's row
// (the synthesis counters are filled by the caller).
func WorkloadSecurityFor(name string, c *core.Compilation) *report.WorkloadSecurity {
	ws := &report.WorkloadSecurity{
		Name:  name,
		Mechs: make(map[string]report.MechSecurity),
	}
	for _, mech := range securityMechs {
		p := c.Analysis.Partition(mech)
		ws.Mechs[mech.String()] = report.MechSecurity{
			Classes:      p.Classes(),
			Members:      p.Members,
			LargestClass: p.Largest(),
			ReplayPairs:  p.ReplayPairs(),
			SizeDist:     report.Summarize(p.SizesFloat()),
		}
	}
	return ws
}

// SecurityViolations checks a record against the structural invariants
// the acceptance bar demands — independent of any prior datapoint, so
// CI can fail a PR whose fresh measurement is internally inconsistent
// even on an empty trajectory. Checked per workload:
//
//   - class-count lattice: STL ≥ Adaptive ≥ STWC ≥ STC and STWC ≥ PARTS
//     (coarsening cannot split; this implies the STL ≥ STC ordering).
//   - replay surface anti-monotone along the same lattice, with STL
//     exactly zero and every member a singleton.
//   - every mechanism protects the same population.
//   - attack synthesis: every tamper confirmed, zero problems, and at
//     least one confirmed detect AND one confirmed miss per signing
//     mechanism — the machine-checked blind-spot enumeration.
//   - every Table 3 cross-check row OK.
func SecurityViolations(rec *report.SecurityRecord) []string {
	var v []string
	bad := func(format string, args ...interface{}) {
		v = append(v, fmt.Sprintf(format, args...))
	}
	for _, w := range rec.Workloads {
		get := func(m sti.Mechanism) report.MechSecurity { return w.Mechs[m.String()] }
		parts, stwc := get(sti.PARTS), get(sti.STWC)
		stc, adaptive, stl := get(sti.STC), get(sti.Adaptive), get(sti.STL)

		for _, mech := range securityMechs {
			if ms := get(mech); ms.Members != stwc.Members {
				bad("%s: %s protects %d members, STWC %d", w.Name, mech, ms.Members, stwc.Members)
			}
		}
		if !(stl.Classes >= adaptive.Classes && adaptive.Classes >= stwc.Classes && stwc.Classes >= stc.Classes) {
			bad("%s: class-count lattice violated: STL %d, Adaptive %d, STWC %d, STC %d",
				w.Name, stl.Classes, adaptive.Classes, stwc.Classes, stc.Classes)
		}
		if stwc.Classes < parts.Classes {
			bad("%s: PARTS has more classes (%d) than STWC (%d)", w.Name, parts.Classes, stwc.Classes)
		}
		if !(stc.ReplayPairs >= stwc.ReplayPairs && stwc.ReplayPairs >= adaptive.ReplayPairs &&
			adaptive.ReplayPairs >= stl.ReplayPairs) {
			bad("%s: replay-surface ordering violated: STC %d, STWC %d, Adaptive %d, STL %d",
				w.Name, stc.ReplayPairs, stwc.ReplayPairs, adaptive.ReplayPairs, stl.ReplayPairs)
		}
		if parts.ReplayPairs < stwc.ReplayPairs {
			bad("%s: PARTS replay surface (%d) below STWC (%d)", w.Name, parts.ReplayPairs, stwc.ReplayPairs)
		}
		if stl.ReplayPairs != 0 || stl.LargestClass > 1 || stl.Classes != stl.Members {
			bad("%s: STL not fully singleton: %d classes / %d members, largest %d, %d pairs",
				w.Name, stl.Classes, stl.Members, stl.LargestClass, stl.ReplayPairs)
		}

		if w.SynthTampers == 0 {
			bad("%s: attack synthesis produced no tampers", w.Name)
		}
		if w.SynthConfirmed != w.SynthTampers {
			bad("%s: only %d/%d synthesized tampers confirmed", w.Name, w.SynthConfirmed, w.SynthTampers)
		}
		for _, p := range w.SynthProblems {
			bad("%s: synthesis problem: %s", w.Name, p)
		}
		for _, mech := range securityMechs {
			if w.ConfirmedDetect[mech.String()] == 0 {
				bad("%s: no confirmed detected tamper under %s", w.Name, mech)
			}
			if w.ConfirmedMiss[mech.String()] == 0 {
				bad("%s: no confirmed missed tamper under %s", w.Name, mech)
			}
		}
	}
	for _, t := range rec.Table3 {
		if !t.OK {
			bad("table3 cross-check %s: partition STWC %d vs equiv %d, STC %d vs %d",
				t.Name, t.PartitionSTWC, t.EquivSTWC, t.PartitionSTC, t.EquivSTC)
		}
	}
	return v
}

package core

import (
	"errors"
	"fmt"

	"rsti/internal/cminor"
	"rsti/internal/sti"
	"rsti/internal/vm"
)

// The pipeline's sentinel errors. Compile and Run attach them with
// fmt.Errorf's %w, so callers classify failures with errors.Is instead of
// matching message text:
//
//	_, err := core.Compile(src)
//	if errors.Is(err, core.ErrParse) { ... }     // syntax error
//	if errors.Is(err, core.ErrTypeCheck) { ... } // semantic error
var (
	// ErrParse marks lexical and syntactic frontend failures.
	ErrParse = errors.New("parse error")
	// ErrTypeCheck marks semantic frontend failures (name resolution,
	// type checking).
	ErrTypeCheck = errors.New("type-check error")
	// ErrStepBudget marks a run stopped by its step budget
	// (vm.TrapMaxSteps). It is matched by TrapError.Is, so
	// errors.Is(res.Err, ErrStepBudget) works on a budget-exhausted run.
	ErrStepBudget = errors.New("step budget exhausted")
)

// TrapError is the typed error a run's RunResult.Err carries when the
// machine trapped. It decorates the raw vm.Trap with the mechanism that
// was enforcing, and exposes the trap's kind and PC (the source position
// the interpreter was executing) as fields, so callers dispatch with
// errors.As instead of parsing messages:
//
//	var te *core.TrapError
//	if errors.As(res.Err, &te) && te.Kind == vm.TrapAuthFailure { ... }
//
// The underlying *vm.Trap (and, for TrapCancelled, the context error
// beneath it) remain reachable through Unwrap, so
// errors.Is(err, context.DeadlineExceeded) and vm.AsTrap both still work.
type TrapError struct {
	// Kind classifies the trap (authentication failure, out-of-bounds,
	// budget, cancellation, ...).
	Kind vm.TrapKind
	// Fn and PC locate the trapping instruction: the function name and
	// the source position (the model's program counter).
	Fn string
	PC cminor.Pos
	// Mechanism is the defense the program was running under.
	Mechanism sti.Mechanism

	trap *vm.Trap
}

// newTrapError wraps a vm.Trap for the given mechanism.
func newTrapError(t *vm.Trap, mech sti.Mechanism) *TrapError {
	return &TrapError{Kind: t.Kind, Fn: t.Fn, PC: t.Pos, Mechanism: mech, trap: t}
}

func (e *TrapError) Error() string {
	return fmt.Sprintf("%s: %v", e.Mechanism, e.trap)
}

// Unwrap exposes the underlying vm.Trap (which may itself wrap a context
// error for TrapCancelled).
func (e *TrapError) Unwrap() error { return e.trap }

// Trap returns the underlying machine trap.
func (e *TrapError) Trap() *vm.Trap { return e.trap }

// SecurityTrap reports whether the trap is a defense detection (see
// vm.Trap.SecurityTrap).
func (e *TrapError) SecurityTrap() bool { return e.trap.SecurityTrap() }

// Is maps trap kinds onto the package's sentinel errors so that
// errors.Is(err, ErrStepBudget) matches a TrapMaxSteps trap.
func (e *TrapError) Is(target error) bool {
	return target == ErrStepBudget && e.Kind == vm.TrapMaxSteps
}

package core

import (
	"bytes"
	"testing"

	"rsti/internal/mir"
	"rsti/internal/sti"
)

// roundtripSrc exercises the features the codec must preserve exactly:
// self-referential structs (cyclic type graph, nominal identity), nested
// composites, function pointers through a table (PAC modifiers embed
// interned type IDs), arrays, const qualification, and printf output.
const roundtripSrc = `
struct node { int val; struct node *next; };
struct ctx { struct node head; int (*op)(int, int); const char *tag; };

int add(int a, int b) { return a + b; }
int mul(int a, int b) { return a * b; }

int fold(struct node *n, int (*op)(int, int), int acc) {
	while (n) {
		acc = op(acc, n->val);
		n = n->next;
	}
	return acc;
}

int main() {
	struct node a; struct node b; struct node c;
	struct ctx cx;
	a.val = 3; b.val = 5; c.val = 7;
	a.next = &b; b.next = &c; c.next = 0;
	cx.head = a;
	cx.op = add;
	printf("sum=%d\n", fold(&cx.head, cx.op, 0));
	cx.op = mul;
	printf("prod=%d\n", fold(&cx.head, cx.op, 1));
	return fold(&a, add, 100);
}
`

// TestCodecRoundTrip proves the disk-artifact codec is lossless where it
// matters: the decoded program prints identically, the restored type
// table assigns the same IDs (PAC modifiers depend on them), and a
// Compilation reconstituted via FromProgram replays bit-identically —
// same exit, output, trap state and modelled cycle counts — under every
// mechanism.
func TestCodecRoundTrip(t *testing.T) {
	orig, err := Compile(roundtripSrc)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}

	var buf bytes.Buffer
	if err := mir.EncodeProgram(&buf, orig.Prog); err != nil {
		t.Fatalf("EncodeProgram: %v", err)
	}
	dec, err := mir.DecodeProgram(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("DecodeProgram: %v", err)
	}

	if got, want := dec.String(), orig.Prog.String(); got != want {
		t.Fatalf("decoded program text differs:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	ot, dt := orig.Prog.Types, dec.Types
	if ot.Len() != dt.Len() {
		t.Fatalf("type table length: got %d, want %d", dt.Len(), ot.Len())
	}
	for i := 0; i < ot.Len(); i++ {
		if got, want := dt.ByID(i).Key(), ot.ByID(i).Key(); got != want {
			t.Fatalf("type ID %d: got %q, want %q (ID order must survive round-trip)", i, got, want)
		}
	}

	reload, err := FromProgram(dec)
	if err != nil {
		t.Fatalf("FromProgram: %v", err)
	}
	for _, mech := range sti.Mechanisms {
		a, err := orig.Run(mech, RunConfig{})
		if err != nil {
			t.Fatalf("%v: original run: %v", mech, err)
		}
		b, err := reload.Run(mech, RunConfig{})
		if err != nil {
			t.Fatalf("%v: reloaded run: %v", mech, err)
		}
		if a.Exit != b.Exit || a.Output != b.Output {
			t.Errorf("%v: exit/output diverged: orig (%d, %q) vs reload (%d, %q)",
				mech, a.Exit, a.Output, b.Exit, b.Output)
		}
		if a.Stats != b.Stats {
			t.Errorf("%v: stats diverged:\norig   %+v\nreload %+v", mech, a.Stats, b.Stats)
		}
		if (a.Trap == nil) != (b.Trap == nil) {
			t.Errorf("%v: trap state diverged: orig %v vs reload %v", mech, a.Trap, b.Trap)
		}
	}

	// Encoding must be deterministic: the same program encodes to the same
	// bytes, so content-addressed artifact files are stable.
	var buf2 bytes.Buffer
	if err := mir.EncodeProgram(&buf2, orig.Prog); err != nil {
		t.Fatalf("EncodeProgram (second): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("encoding is not deterministic for the same program")
	}
}

// TestDecodeRejects covers the failure envelope: version skew and garbage
// payloads must fail loudly, never yield a half-built program.
func TestDecodeRejects(t *testing.T) {
	if _, err := mir.DecodeProgram(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Error("garbage payload decoded without error")
	}
	if _, err := mir.DecodeProgram(bytes.NewReader(nil)); err == nil {
		t.Error("empty payload decoded without error")
	}
}

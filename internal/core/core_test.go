package core

import (
	"strings"
	"testing"

	"rsti/internal/sti"
	"rsti/internal/vm"
)

func TestCompileErrorsPropagate(t *testing.T) {
	if _, err := Compile("int main(void) { return undeclared; }"); err == nil {
		t.Error("semantic error not reported")
	}
	if _, err := Compile("int main(void { return 0; }"); err == nil {
		t.Error("syntax error not reported")
	}
	if _, err := Compile("@"); err == nil {
		t.Error("lex error not reported")
	}
}

func TestBuildCaching(t *testing.T) {
	c, err := Compile("int main(void) { return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Build(sti.STWC)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Build(sti.STWC)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("builds are not cached")
	}
	n, err := c.Build(sti.STC)
	if err != nil {
		t.Fatal(err)
	}
	if n == a {
		t.Error("different mechanisms share a build")
	}
}

func TestRunAllMechanisms(t *testing.T) {
	c, err := Compile(`
		int main(void) {
			int *p = (int*) malloc(4);
			*p = 9;
			return *p;
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	results, err := c.RunAll(sti.Mechanisms, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(sti.Mechanisms) {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Err != nil || r.Exit != 9 {
			t.Errorf("%s: exit=%d err=%v", r.Mechanism, r.Exit, r.Err)
		}
	}
}

func TestOutputCapture(t *testing.T) {
	c, err := Compile(`int main(void) { printf("captured %d", 5); return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(sti.None, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "captured 5" {
		t.Errorf("Output = %q", res.Output)
	}
	// With an explicit writer, Output stays empty and the writer gets it.
	var sb strings.Builder
	res2, err := c.Run(sti.None, RunConfig{Output: &sb})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Output != "" || sb.String() != "captured 5" {
		t.Errorf("explicit writer: Output=%q writer=%q", res2.Output, sb.String())
	}
}

func TestOverheadComputation(t *testing.T) {
	base := &RunResult{Stats: vm.Stats{Cycles: 1000}}
	prot := &RunResult{Stats: vm.Stats{Cycles: 1100}}
	if o := Overhead(base, prot); o < 0.099 || o > 0.101 {
		t.Errorf("overhead = %v, want 0.10", o)
	}
	if Overhead(&RunResult{}, prot) != 0 {
		t.Error("zero baseline should yield zero overhead")
	}
}

func TestPARTSCostPenaltyApplied(t *testing.T) {
	// The same pointer-heavy program must cost PARTS more cycles than
	// STWC despite executing comparable PA op counts.
	src := `
		struct n { struct n *next; int v; };
		int main(void) {
			struct n *head = NULL;
			for (int i = 0; i < 40; i++) {
				struct n *x = (struct n*) malloc(sizeof(struct n));
				x->next = head;
				x->v = i;
				head = x;
			}
			int s = 0;
			for (struct n *c = head; c != NULL; c = c->next) s += c->v;
			return s & 127;
		}
	`
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := c.Run(sti.PARTS, RunConfig{})
	if err != nil || parts.Err != nil {
		t.Fatalf("%v %v", err, parts.Err)
	}
	stwc, err := c.Run(sti.STWC, RunConfig{})
	if err != nil || stwc.Err != nil {
		t.Fatalf("%v %v", err, stwc.Err)
	}
	if parts.Stats.Cycles <= stwc.Stats.Cycles {
		t.Errorf("PARTS cycles %d not above STWC %d — the cost penalty is not applied",
			parts.Stats.Cycles, stwc.Stats.Cycles)
	}
}

func TestDetectedClassification(t *testing.T) {
	r := &RunResult{}
	if r.Detected() || r.Crashed() {
		t.Error("clean result misclassified")
	}
	r.Trap = &vm.Trap{Kind: vm.TrapAuthFailure}
	r.Err = r.Trap
	if !r.Detected() || !r.Crashed() {
		t.Error("security trap misclassified")
	}
	r.Trap = &vm.Trap{Kind: vm.TrapDivideByZero}
	if r.Detected() {
		t.Error("divide-by-zero classified as a detection")
	}
}

func TestSetupHookRuns(t *testing.T) {
	c, err := Compile("int g; int main(void) { return g; }")
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(sti.None, RunConfig{Setup: func(m *vm.Machine) {
		addr, _ := m.GlobalAddr("g")
		_ = m.Mem.Poke(addr, 55, 4)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exit != 55 {
		t.Errorf("setup hook write not visible: exit=%d", res.Exit)
	}
}

package core

import (
	"sync"
	"testing"

	"rsti/internal/sti"
)

const hammerSrc = `
	struct node { int key; struct node *next; };
	int twice(int x) { return 2 * x; }
	int (*op)(int);
	int main(void) {
		struct node *head = NULL;
		for (int i = 1; i <= 8; i++) {
			struct node *n = (struct node*) malloc(sizeof(struct node));
			n->key = i;
			n->next = head;
			head = n;
		}
		op = twice;
		int sum = 0;
		for (struct node *c = head; c != NULL; c = c->next) sum += op(c->key);
		return sum;
	}
`

// TestBuildHammerExactlyOnce floods Compilation.Build from many
// goroutines across every mechanism and checks the once-cell contract:
// instrumentation ran exactly once per mechanism, every caller got the
// same build, and each build is bit-identical to a fresh serial
// compilation's.
func TestBuildHammerExactlyOnce(t *testing.T) {
	c, err := Compile(hammerSrc)
	if err != nil {
		t.Fatal(err)
	}
	mechs := append(append([]sti.Mechanism{}, sti.Mechanisms...), sti.Adaptive)

	const callersPerMech = 8
	results := make([][]*Build, callersPerMech)
	var wg sync.WaitGroup
	for g := 0; g < callersPerMech; g++ {
		results[g] = make([]*Build, len(mechs))
		for mi, mech := range mechs {
			wg.Add(1)
			go func(g, mi int, mech sti.Mechanism) {
				defer wg.Done()
				b, err := c.Build(mech)
				if err != nil {
					t.Errorf("caller %d %s: %v", g, mech, err)
					return
				}
				// Each goroutine writes its own slice slot.
				results[g][mi] = b
			}(g, mi, mech)
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	if n := c.InstrumentCalls(); n != int64(len(mechs)) {
		t.Errorf("instrumentation ran %d times for %d mechanisms", n, len(mechs))
	}
	for mi, mech := range mechs {
		first := results[0][mi]
		for g := 1; g < callersPerMech; g++ {
			if results[g][mi] != first {
				t.Fatalf("%s: caller %d received a different build", mech, g)
			}
		}
	}

	// Bit-identity against an untouched compilation built serially.
	serial, err := Compile(hammerSrc)
	if err != nil {
		t.Fatal(err)
	}
	for mi, mech := range mechs {
		sb, err := serial.Build(mech)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := results[0][mi].Prog.String(), sb.Prog.String(); got != want {
			t.Errorf("%s: hammered build differs from serial build", mech)
		}
		if *results[0][mi].Stats != *sb.Stats {
			t.Errorf("%s: stats diverge: %+v vs %+v", mech, *results[0][mi].Stats, *sb.Stats)
		}
	}
}

// TestBuildAllMatchesBuild: the concurrent BuildAll returns the same
// cached builds later Build calls see, in request order.
func TestBuildAllMatchesBuild(t *testing.T) {
	c, err := Compile(hammerSrc)
	if err != nil {
		t.Fatal(err)
	}
	mechs := []sti.Mechanism{sti.STWC, sti.STC, sti.STL}
	builds, err := c.BuildAll(mechs)
	if err != nil {
		t.Fatal(err)
	}
	if len(builds) != len(mechs) {
		t.Fatalf("got %d builds, want %d", len(builds), len(mechs))
	}
	for i, mech := range mechs {
		if builds[i].Mechanism != mech {
			t.Errorf("builds[%d].Mechanism = %s, want %s", i, builds[i].Mechanism, mech)
		}
		b, err := c.Build(mech)
		if err != nil {
			t.Fatal(err)
		}
		if b != builds[i] {
			t.Errorf("%s: BuildAll and Build returned different builds", mech)
		}
	}
	if n := c.InstrumentCalls(); n != int64(len(mechs)) {
		t.Errorf("instrumentation ran %d times, want %d", n, len(mechs))
	}
}

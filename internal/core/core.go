// Package core wires the pipeline together: C source → frontend → IR →
// STI analysis → per-mechanism instrumentation → VM. It is the engine the
// public rsti package, the command-line tools, the attack scenarios and
// the benchmark harness all drive.
package core

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"rsti/internal/cminor"
	"rsti/internal/lower"
	"rsti/internal/mir"
	"rsti/internal/rsti"
	"rsti/internal/sti"
	"rsti/internal/vm"
)

// Compilation is a fully analyzed program plus its per-mechanism
// instrumented builds (built lazily and cached). A Compilation may be
// shared — the compilation cache hands the same one to several
// measurements — so the build cache must be safe for concurrent use.
// Each mechanism gets its own once-cell: the map mutex is held only to
// look the cell up, never across instrumentation, so distinct mechanisms
// build in parallel and duplicate Build(mech) calls block only on their
// own mechanism.
type Compilation struct {
	File     *cminor.File
	Prog     *mir.Program
	Analysis *sti.Analysis

	mu     sync.Mutex // guards the builds map, not the builds themselves
	builds map[sti.Mechanism]*buildCell

	instrumentCalls atomic.Int64
}

// buildCell is one mechanism's once-initialized build. Instrumentation is
// deterministic, so a failure is as cacheable as a success: retrying the
// same program under the same mechanism would fail identically.
type buildCell struct {
	once sync.Once
	b    *Build
	err  error
}

// Build is one protected (or baseline) executable image.
type Build struct {
	Mechanism sti.Mechanism
	Prog      *mir.Program
	Stats     *rsti.Stats
}

// Compile runs the frontend, lowering and STI analysis. Frontend failures
// carry the ErrParse / ErrTypeCheck sentinels for errors.Is.
func Compile(src string) (*Compilation, error) {
	f, err := cminor.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("frontend: %w: %w", ErrParse, err)
	}
	if err := cminor.Check(f); err != nil {
		return nil, fmt.Errorf("frontend: %w: %w", ErrTypeCheck, err)
	}
	prog, err := lower.Lower(f)
	if err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	return &Compilation{
		File:     f,
		Prog:     prog,
		Analysis: sti.Analyze(prog),
		builds:   make(map[sti.Mechanism]*buildCell),
	}, nil
}

// cell returns the mechanism's once-cell, creating it on first request.
func (c *Compilation) cell(mech sti.Mechanism) *buildCell {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.builds == nil {
		c.builds = make(map[sti.Mechanism]*buildCell)
	}
	cl, ok := c.builds[mech]
	if !ok {
		cl = &buildCell{}
		c.builds[mech] = cl
	}
	return cl
}

// Build instruments the program under the given mechanism, exactly once
// per mechanism no matter how many goroutines race here. Concurrent calls
// for the same mechanism coalesce on its once-cell; calls for different
// mechanisms never block each other.
func (c *Compilation) Build(mech sti.Mechanism) (*Build, error) {
	cl := c.cell(mech)
	cl.once.Do(func() {
		c.instrumentCalls.Add(1)
		prog, stats, err := rsti.Instrument(c.Prog, c.Analysis, mech)
		if err != nil {
			cl.err = err
			return
		}
		cl.b = &Build{Mechanism: mech, Prog: prog, Stats: stats}
	})
	return cl.b, cl.err
}

// BuildAll instruments the program under every requested mechanism
// concurrently, returning builds in mechanism order. The first failure
// (by request order) is returned.
func (c *Compilation) BuildAll(mechs []sti.Mechanism) ([]*Build, error) {
	out := make([]*Build, len(mechs))
	errs := make([]error, len(mechs))
	var wg sync.WaitGroup
	for i, m := range mechs {
		wg.Add(1)
		go func(i int, m sti.Mechanism) {
			defer wg.Done()
			out[i], errs[i] = c.Build(m)
		}(i, m)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", mechs[i], err)
		}
	}
	return out, nil
}

// InstrumentCalls reports how many times instrumentation actually ran —
// the exactly-once guarantee's observable: after any number of Build
// calls across any number of goroutines, it equals the number of
// distinct mechanisms built.
func (c *Compilation) InstrumentCalls() int64 { return c.instrumentCalls.Load() }

// RunResult is one execution's outcome.
type RunResult struct {
	Mechanism sti.Mechanism
	Exit      int64
	// Err is nil for a clean exit. A machine trap surfaces as a
	// *TrapError (wrapping the *vm.Trap), so errors.As and errors.Is
	// dispatch on it; Trap holds the raw trap for direct access.
	Err   error
	Trap  *vm.Trap // non-nil when Err is a trap
	Stats vm.Stats
	// Output is the program's captured printf/puts text (only when
	// RunConfig.Output was nil and core captured it). OutputTruncated
	// reports that the capture hit RunConfig.MaxOutputBytes and the tail
	// was dropped.
	Output          string
	OutputTruncated bool
}

// Detected reports whether the run ended in a security trap — the defense
// catching a corrupted or substituted pointer.
func (r *RunResult) Detected() bool { return r.Trap != nil && r.Trap.SecurityTrap() }

// Crashed reports whether the run ended abnormally for any reason.
func (r *RunResult) Crashed() bool { return r.Err != nil }

// DefaultMaxOutputBytes caps captured program output when
// RunConfig.MaxOutputBytes is zero: enough for every evaluation workload,
// small enough that a printf loop cannot exhaust host memory under a
// long-lived engine.
const DefaultMaxOutputBytes = 1 << 20

// RunConfig parameterizes an execution.
type RunConfig struct {
	Options vm.Options
	Hooks   map[int64]vm.Hook
	Externs map[string]func(*vm.Machine, []uint64) (uint64, error)
	Output  io.Writer
	// Setup runs after machine construction, before execution (for
	// scenario-specific machine preparation).
	Setup func(*vm.Machine)

	// Timeout, when positive, bounds the run's wall-clock time: the run's
	// context gets a deadline and the interpreter stops with a
	// TrapCancelled (errors.Is(err, context.DeadlineExceeded)) when it
	// expires.
	Timeout time.Duration
	// StepBudget, when positive, overrides Options.MaxSteps. It is
	// applied after Options, so it wins regardless of how Options was
	// populated.
	StepBudget int64
	// MaxOutputBytes caps the internally captured program output (used
	// only when Output is nil). Zero means DefaultMaxOutputBytes;
	// negative means unlimited. Truncation is reported in
	// RunResult.OutputTruncated, never as an execution error.
	MaxOutputBytes int
	// Worker, when non-nil, lends the run an engine worker's reusable
	// machine state (see vm.WorkerState). Engine-internal.
	Worker *vm.WorkerState
}

// PARTSPACCost is the per-instruction cycle charge for the PARTS
// baseline's PA operations. PARTS' published nbench overhead (19.5%) is
// an order of magnitude above RSTI's (1.54%) despite instrumenting the
// same pointer loads/stores; the paper attributes the gap to RSTI's use
// of inlined LLVM ptrauth intrinsics, a backend-placed pass, LTO and -O2,
// versus PARTS' call-based instrumentation with register spills. The
// baseline therefore charges ~11x RSTI's per-op cost, reproducing that
// implementation-quality gap.
const PARTSPACCost = 22

// Run executes a build with a background context; see RunContext.
func (c *Compilation) Run(mech sti.Mechanism, cfg RunConfig) (*RunResult, error) {
	return c.RunContext(context.Background(), mech, cfg)
}

// RunContext executes a build under ctx. Cancellation and cfg.Timeout are
// enforced by the interpreter's step-loop checkpoints: the run returns a
// RunResult whose Err is a *TrapError of kind vm.TrapCancelled wrapping
// the context's error. Compile/instrumentation failures (not execution
// outcomes) are returned as RunContext's own error.
func (c *Compilation) RunContext(ctx context.Context, mech sti.Mechanism, cfg RunConfig) (*RunResult, error) {
	b, err := c.Build(mech)
	if err != nil {
		return nil, err
	}
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	if cfg.Options.MaxSteps == 0 {
		cfg.Options = vm.DefaultOptions()
	}
	if cfg.StepBudget > 0 {
		cfg.Options.MaxSteps = cfg.StepBudget
	}
	if mech == sti.PARTS {
		cfg.Options.Cost.PAC = PARTSPACCost
	}
	var sink *outputCapture
	if cfg.Output != nil {
		cfg.Options.Output = cfg.Output
	} else {
		limit := cfg.MaxOutputBytes
		if limit == 0 {
			limit = DefaultMaxOutputBytes
		}
		sink = &outputCapture{limit: limit}
		cfg.Options.Output = sink
	}
	cfg.Options.Worker = cfg.Worker
	m := vm.New(b.Prog, cfg.Options)
	m.SetContext(ctx)
	for id, h := range cfg.Hooks {
		m.RegisterHook(id, h)
	}
	for name, fn := range cfg.Externs {
		m.RegisterExtern(name, fn)
	}
	if cfg.Setup != nil {
		cfg.Setup(m)
	}
	exit, err := m.Run()
	res := &RunResult{Mechanism: mech, Exit: exit, Err: err, Stats: m.Stats}
	if t, ok := vm.AsTrap(err); ok {
		res.Trap = t
		res.Err = newTrapError(t, mech)
	}
	if sink != nil {
		res.Output = sink.String()
		res.OutputTruncated = sink.truncated
	}
	return res, nil
}

// outputCapture buffers program output up to limit bytes (negative =
// unlimited); overflow is counted, not stored, so a printf loop cannot
// grow host memory without bound.
type outputCapture struct {
	buf       []byte
	limit     int
	truncated bool
}

func (o *outputCapture) Write(p []byte) (int, error) {
	n := len(p)
	if o.limit >= 0 {
		if room := o.limit - len(o.buf); room < n {
			if room < 0 {
				room = 0
			}
			p = p[:room]
			o.truncated = true
		}
	}
	o.buf = append(o.buf, p...)
	return n, nil
}

func (o *outputCapture) String() string { return string(o.buf) }

// RunAll executes the program under every requested mechanism with the
// same configuration, returning results in mechanism order.
func (c *Compilation) RunAll(mechs []sti.Mechanism, cfg RunConfig) ([]*RunResult, error) {
	out := make([]*RunResult, 0, len(mechs))
	for _, m := range mechs {
		r, err := c.Run(m, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// Overhead returns the relative cycle overhead of a protected run against
// a baseline run of the same workload: (protected - base) / base.
func Overhead(base, protected *RunResult) float64 {
	if base.Stats.Cycles == 0 {
		return 0
	}
	return float64(protected.Stats.Cycles-base.Stats.Cycles) / float64(base.Stats.Cycles)
}

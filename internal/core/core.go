// Package core wires the pipeline together: C source → frontend → IR →
// STI analysis → per-mechanism instrumentation → VM. It is the engine the
// public rsti package, the command-line tools, the attack scenarios and
// the benchmark harness all drive.
package core

import (
	"fmt"
	"io"
	"sync"

	"rsti/internal/cminor"
	"rsti/internal/lower"
	"rsti/internal/mir"
	"rsti/internal/rsti"
	"rsti/internal/sti"
	"rsti/internal/vm"
)

// Compilation is a fully analyzed program plus its per-mechanism
// instrumented builds (built lazily and cached). A Compilation may be
// shared — eval's compilation cache hands the same one to several
// measurements — so the build cache is guarded by a mutex.
type Compilation struct {
	File     *cminor.File
	Prog     *mir.Program
	Analysis *sti.Analysis

	mu     sync.Mutex
	builds map[sti.Mechanism]*Build
}

// Build is one protected (or baseline) executable image.
type Build struct {
	Mechanism sti.Mechanism
	Prog      *mir.Program
	Stats     *rsti.Stats
}

// Compile runs the frontend, lowering and STI analysis.
func Compile(src string) (*Compilation, error) {
	f, err := cminor.Frontend(src)
	if err != nil {
		return nil, fmt.Errorf("frontend: %w", err)
	}
	prog, err := lower.Lower(f)
	if err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	return &Compilation{
		File:     f,
		Prog:     prog,
		Analysis: sti.Analyze(prog),
		builds:   make(map[sti.Mechanism]*Build),
	}, nil
}

// Build instruments the program under the given mechanism (cached).
func (c *Compilation) Build(mech sti.Mechanism) (*Build, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.builds[mech]; ok {
		return b, nil
	}
	prog, stats, err := rsti.Instrument(c.Prog, c.Analysis, mech)
	if err != nil {
		return nil, err
	}
	b := &Build{Mechanism: mech, Prog: prog, Stats: stats}
	c.builds[mech] = b
	return b, nil
}

// RunResult is one execution's outcome.
type RunResult struct {
	Mechanism sti.Mechanism
	Exit      int64
	Err       error
	Trap      *vm.Trap // non-nil when Err is a trap
	Stats     vm.Stats
	Output    string
}

// Detected reports whether the run ended in a security trap — the defense
// catching a corrupted or substituted pointer.
func (r *RunResult) Detected() bool { return r.Trap != nil && r.Trap.SecurityTrap() }

// Crashed reports whether the run ended abnormally for any reason.
func (r *RunResult) Crashed() bool { return r.Err != nil }

// RunConfig parameterizes an execution.
type RunConfig struct {
	Options vm.Options
	Hooks   map[int64]vm.Hook
	Externs map[string]func(*vm.Machine, []uint64) (uint64, error)
	Output  io.Writer
	// Setup runs after machine construction, before execution (for
	// scenario-specific machine preparation).
	Setup func(*vm.Machine)
}

// PARTSPACCost is the per-instruction cycle charge for the PARTS
// baseline's PA operations. PARTS' published nbench overhead (19.5%) is
// an order of magnitude above RSTI's (1.54%) despite instrumenting the
// same pointer loads/stores; the paper attributes the gap to RSTI's use
// of inlined LLVM ptrauth intrinsics, a backend-placed pass, LTO and -O2,
// versus PARTS' call-based instrumentation with register spills. The
// baseline therefore charges ~11x RSTI's per-op cost, reproducing that
// implementation-quality gap.
const PARTSPACCost = 22

// Run executes a build.
func (c *Compilation) Run(mech sti.Mechanism, cfg RunConfig) (*RunResult, error) {
	b, err := c.Build(mech)
	if err != nil {
		return nil, err
	}
	if cfg.Options.MaxSteps == 0 {
		cfg.Options = vm.DefaultOptions()
	}
	if mech == sti.PARTS {
		cfg.Options.Cost.PAC = PARTSPACCost
	}
	var sink *outputCapture
	if cfg.Output != nil {
		cfg.Options.Output = cfg.Output
	} else {
		sink = &outputCapture{}
		cfg.Options.Output = sink
	}
	m := vm.New(b.Prog, cfg.Options)
	for id, h := range cfg.Hooks {
		m.RegisterHook(id, h)
	}
	for name, fn := range cfg.Externs {
		m.RegisterExtern(name, fn)
	}
	if cfg.Setup != nil {
		cfg.Setup(m)
	}
	exit, err := m.Run()
	res := &RunResult{Mechanism: mech, Exit: exit, Err: err, Stats: m.Stats}
	if t, ok := vm.AsTrap(err); ok {
		res.Trap = t
	}
	if sink != nil {
		res.Output = sink.String()
	}
	return res, nil
}

type outputCapture struct{ buf []byte }

func (o *outputCapture) Write(p []byte) (int, error) {
	o.buf = append(o.buf, p...)
	return len(p), nil
}

func (o *outputCapture) String() string { return string(o.buf) }

// RunAll executes the program under every requested mechanism with the
// same configuration, returning results in mechanism order.
func (c *Compilation) RunAll(mechs []sti.Mechanism, cfg RunConfig) ([]*RunResult, error) {
	out := make([]*RunResult, 0, len(mechs))
	for _, m := range mechs {
		r, err := c.Run(m, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// Overhead returns the relative cycle overhead of a protected run against
// a baseline run of the same workload: (protected - base) / base.
func Overhead(base, protected *RunResult) float64 {
	if base.Stats.Cycles == 0 {
		return 0
	}
	return float64(protected.Stats.Cycles-base.Stats.Cycles) / float64(base.Stats.Cycles)
}

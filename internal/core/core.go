// Package core wires the pipeline together: C source → frontend → IR →
// STI analysis → per-mechanism instrumentation → VM. It is the engine the
// public rsti package, the command-line tools, the attack scenarios and
// the benchmark harness all drive.
package core

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rsti/internal/cminor"
	"rsti/internal/lower"
	"rsti/internal/mir"
	"rsti/internal/opt"
	"rsti/internal/rsti"
	"rsti/internal/sti"
	"rsti/internal/vm"
)

// Compilation is a fully analyzed program plus its per-mechanism
// instrumented builds (built lazily and cached). A Compilation may be
// shared — the compilation cache hands the same one to several
// measurements — so the build cache must be safe for concurrent use.
// Each mechanism gets its own once-cell: the map mutex is held only to
// look the cell up, never across instrumentation, so distinct mechanisms
// build in parallel and duplicate Build(mech) calls block only on their
// own mechanism.
type Compilation struct {
	File     *cminor.File
	Prog     *mir.Program
	Analysis *sti.Analysis

	mu     sync.Mutex // guards the builds map, not the builds themselves
	builds map[buildKey]*buildCell

	// The optimizer's elidable-variable set is a property of the program,
	// not of any mechanism; compute it once and share it across every
	// optimized build.
	elideOnce sync.Once
	elide     []bool

	instrumentCalls atomic.Int64
}

// buildKey identifies one cached build: the mechanism plus whether the
// PAC elision optimizer processed it.
type buildKey struct {
	mech      sti.Mechanism
	optimized bool
}

// buildCell is one mechanism's once-initialized build. Instrumentation is
// deterministic, so a failure is as cacheable as a success: retrying the
// same program under the same mechanism would fail identically.
type buildCell struct {
	once sync.Once
	b    *Build
	err  error
}

// Build is one protected (or baseline) executable image.
type Build struct {
	Mechanism sti.Mechanism
	Prog      *mir.Program
	Stats     *rsti.Stats

	// Optimized reports that the PAC elision optimizer processed this
	// build; OptStats then holds what it removed (nil otherwise).
	Optimized bool
	OptStats  *opt.Stats

	// img is the shared predecoded execution image, built once per
	// execution tier on first use: every Program.Run caller and engine
	// worker executing this build at that tier dispatches from the same
	// predecode (and, for tier 1, the same hot-function profile and
	// compiled closure bodies). Index 0 is the interpreter-only image,
	// index 1 the threaded-tier image — separate cells so tier-enabled
	// runs never leave profiling state on the tier-0 image.
	imgOnce [2]sync.Once
	img     [2]*vm.Image
}

// Image returns the build's shared interpreter-tier execution image,
// predecoding on first call. Concurrent callers coalesce on the
// once-cell, mirroring the build coalescing one level up.
func (b *Build) Image() *vm.Image { return b.ImageFor(false) }

// ImageFor returns the build's shared execution image for the given tier,
// predecoding on first call per (mechanism, optimized, tier) cell.
func (b *Build) ImageFor(tier bool) *vm.Image {
	i := 0
	if tier {
		i = 1
	}
	b.imgOnce[i].Do(func() { b.img[i] = vm.NewImage(b.Prog) })
	return b.img[i]
}

// OptimizeMode selects whether a run executes the optimizer-processed
// build. The zero value defers to DefaultOptimize (the RSTI_OPT
// environment toggle), so existing callers keep their behaviour and CI
// can flip whole test binaries.
type OptimizeMode uint8

const (
	OptimizeDefault OptimizeMode = iota // follow DefaultOptimize()
	OptimizeOn
	OptimizeOff
)

// Enabled resolves the mode against the process default.
func (m OptimizeMode) Enabled() bool {
	switch m {
	case OptimizeOn:
		return true
	case OptimizeOff:
		return false
	}
	return DefaultOptimize()
}

var (
	defaultOptOnce sync.Once
	defaultOpt     bool
)

// DefaultOptimize reports the process-wide optimizer default, read once
// from the RSTI_OPT environment variable ("1", "on", "true" or "yes"
// enable it). Unset or anything else means off — the pinned golden
// numbers are measured on unoptimized builds.
func DefaultOptimize() bool {
	defaultOptOnce.Do(func() {
		switch strings.ToLower(os.Getenv("RSTI_OPT")) {
		case "1", "on", "true", "yes":
			defaultOpt = true
		}
	})
	return defaultOpt
}

// TierMode selects whether a run may use the profile-guided
// direct-threaded execution tier above the switch interpreter. The zero
// value defers to DefaultTier (the RSTI_TIER environment toggle). The
// tier changes host dispatch only: every modelled number is bit-identical
// either way, so flipping it is always safe.
type TierMode uint8

const (
	TierDefault TierMode = iota // follow DefaultTier()
	TierOn
	TierOff
)

// Enabled resolves the mode against the process default.
func (m TierMode) Enabled() bool {
	switch m {
	case TierOn:
		return true
	case TierOff:
		return false
	}
	return DefaultTier()
}

var (
	defaultTierOnce sync.Once
	defaultTier     bool
)

// DefaultTier reports the process-wide execution-tier default, read once
// from the RSTI_TIER environment variable ("1", "on", "true" or "yes"
// enable the threaded tier). Unset or anything else means interpreter
// only.
func DefaultTier() bool {
	defaultTierOnce.Do(func() {
		switch strings.ToLower(os.Getenv("RSTI_TIER")) {
		case "1", "on", "true", "yes":
			defaultTier = true
		}
	})
	return defaultTier
}

// Compile runs the frontend, lowering and STI analysis. Frontend failures
// carry the ErrParse / ErrTypeCheck sentinels for errors.Is.
func Compile(src string) (*Compilation, error) {
	f, err := cminor.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("frontend: %w: %w", ErrParse, err)
	}
	if err := cminor.Check(f); err != nil {
		return nil, fmt.Errorf("frontend: %w: %w", ErrTypeCheck, err)
	}
	prog, err := lower.Lower(f)
	if err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	return &Compilation{
		File:     f,
		Prog:     prog,
		Analysis: sti.Analyze(prog),
		builds:   make(map[buildKey]*buildCell),
	}, nil
}

// FromProgram wraps an already-lowered program — typically one decoded
// from a disk artifact — as a Compilation: it verifies the IR, reruns the
// STI analysis (deterministic, so PAC modifiers and scope metadata come
// out exactly as the original compile produced them), and leaves builds
// to materialize lazily as usual. The frontend AST is not reconstructed
// (File is nil); nothing downstream of Compile reads it.
func FromProgram(prog *mir.Program) (*Compilation, error) {
	if err := prog.Verify(); err != nil {
		return nil, fmt.Errorf("reloaded program: %w", err)
	}
	return &Compilation{
		Prog:     prog,
		Analysis: sti.Analyze(prog),
		builds:   make(map[buildKey]*buildCell),
	}, nil
}

// elideSet returns the program's elidable-variable set, computed once.
func (c *Compilation) elideSet() []bool {
	c.elideOnce.Do(func() { c.elide = opt.ElidableVars(c.Prog, c.Analysis) })
	return c.elide
}

// cell returns the build key's once-cell, creating it on first request.
func (c *Compilation) cell(k buildKey) *buildCell {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.builds == nil {
		c.builds = make(map[buildKey]*buildCell)
	}
	cl, ok := c.builds[k]
	if !ok {
		cl = &buildCell{}
		c.builds[k] = cl
	}
	return cl
}

// Build instruments the program under the given mechanism without the
// optimizer, exactly once per mechanism no matter how many goroutines
// race here; see BuildMode.
func (c *Compilation) Build(mech sti.Mechanism) (*Build, error) {
	return c.BuildMode(mech, false)
}

// BuildMode instruments the program under the given mechanism, exactly
// once per (mechanism, optimized) pair no matter how many goroutines race
// here. Concurrent calls for the same key coalesce on its once-cell;
// calls for different keys never block each other. An optimized build
// applies the PAC elision set during instrumentation and the
// redundant-authentication pass after it. The baseline (sti.None) has no
// PAC traffic, so its optimized build is the unoptimized one.
func (c *Compilation) BuildMode(mech sti.Mechanism, optimized bool) (*Build, error) {
	if mech == sti.None {
		optimized = false
	}
	cl := c.cell(buildKey{mech: mech, optimized: optimized})
	cl.once.Do(func() {
		c.instrumentCalls.Add(1)
		opts := rsti.Options{}
		if optimized {
			// The base candidate set is mechanism-independent; the coupling
			// refinement drops candidates whose elision would insert
			// boundary sign/auth ops under this mechanism's class merging.
			opts.Elide = opt.RefineElide(c.Prog, c.Analysis, c.elideSet(), mech)
		}
		prog, stats, err := rsti.InstrumentWithOptions(c.Prog, c.Analysis, mech, opts)
		if err != nil {
			cl.err = err
			return
		}
		b := &Build{Mechanism: mech, Prog: prog, Stats: stats, Optimized: optimized}
		if optimized {
			b.OptStats = opt.Optimize(prog, mech)
			for _, e := range opts.Elide {
				if e {
					b.OptStats.ElidableVars++
				}
			}
			if err := prog.Verify(); err != nil {
				cl.err = fmt.Errorf("opt: optimized program fails verification: %w", err)
				return
			}
		}
		cl.b = b
	})
	return cl.b, cl.err
}

// BuildFlavor names one entry of the standard build matrix: a mechanism
// plus whether the PAC elision optimizer processes it. Disk artifacts
// persist one instrumented-program section per flavor, so a cold restart
// can serve any (mechanism, optimizer) request without instrumenting.
type BuildFlavor struct {
	Mech      sti.Mechanism
	Optimized bool
}

// StandardFlavors is the build matrix the persistent artifact format
// covers: every mechanism in both optimizer modes, except the
// uninstrumented baseline whose optimized build is its unoptimized one
// (BuildMode folds them). The execution tier is not a flavor — tier 0 and
// tier 1 share one instrumented program and differ only in which shared
// image cell dispatches it.
func StandardFlavors() []BuildFlavor {
	mechs := []sti.Mechanism{sti.None, sti.PARTS, sti.STWC, sti.STC, sti.STL, sti.Adaptive}
	out := make([]BuildFlavor, 0, 2*len(mechs)-1)
	for _, m := range mechs {
		out = append(out, BuildFlavor{Mech: m})
		if m != sti.None {
			out = append(out, BuildFlavor{Mech: m, Optimized: true})
		}
	}
	return out
}

// SeedBuild installs a pre-instrumented build — typically decoded from a
// disk artifact's flavor section — into the compilation's once-cell for
// (mech, optimized). It reports whether the seed took: false means the
// cell was already populated (a racing Build got there first), and the
// existing build wins so every caller keeps seeing one shared image.
// Seeded cells satisfy later Build/BuildMode calls without running
// instrumentation, which is the cluster cold-start contract: a restarted
// daemon's first run must cost zero instrument passes.
func (c *Compilation) SeedBuild(mech sti.Mechanism, optimized bool, b *Build) bool {
	if mech == sti.None {
		optimized = false
	}
	cl := c.cell(buildKey{mech: mech, optimized: optimized})
	seeded := false
	cl.once.Do(func() {
		cl.b = b
		seeded = true
	})
	return seeded
}

// BuildAll instruments the program under every requested mechanism
// concurrently, returning builds in mechanism order. The first failure
// (by request order) is returned.
func (c *Compilation) BuildAll(mechs []sti.Mechanism) ([]*Build, error) {
	out := make([]*Build, len(mechs))
	errs := make([]error, len(mechs))
	var wg sync.WaitGroup
	for i, m := range mechs {
		wg.Add(1)
		go func(i int, m sti.Mechanism) {
			defer wg.Done()
			out[i], errs[i] = c.Build(m)
		}(i, m)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", mechs[i], err)
		}
	}
	return out, nil
}

// InstrumentCalls reports how many times instrumentation actually ran —
// the exactly-once guarantee's observable: after any number of Build
// calls across any number of goroutines, it equals the number of
// distinct mechanisms built.
func (c *Compilation) InstrumentCalls() int64 { return c.instrumentCalls.Load() }

// RunResult is one execution's outcome.
type RunResult struct {
	Mechanism sti.Mechanism
	Exit      int64
	// Err is nil for a clean exit. A machine trap surfaces as a
	// *TrapError (wrapping the *vm.Trap), so errors.As and errors.Is
	// dispatch on it; Trap holds the raw trap for direct access.
	Err   error
	Trap  *vm.Trap // non-nil when Err is a trap
	Stats vm.Stats
	// Output is the program's captured printf/puts text (only when
	// RunConfig.Output was nil and core captured it). OutputTruncated
	// reports that the capture hit RunConfig.MaxOutputBytes and the tail
	// was dropped.
	Output          string
	OutputTruncated bool
}

// Detected reports whether the run ended in a security trap — the defense
// catching a corrupted or substituted pointer.
func (r *RunResult) Detected() bool { return r.Trap != nil && r.Trap.SecurityTrap() }

// Crashed reports whether the run ended abnormally for any reason.
func (r *RunResult) Crashed() bool { return r.Err != nil }

// DefaultMaxOutputBytes caps captured program output when
// RunConfig.MaxOutputBytes is zero: enough for every evaluation workload,
// small enough that a printf loop cannot exhaust host memory under a
// long-lived engine.
const DefaultMaxOutputBytes = 1 << 20

// RunConfig parameterizes an execution.
type RunConfig struct {
	Options vm.Options
	Hooks   map[int64]vm.Hook
	Externs map[string]func(*vm.Machine, []uint64) (uint64, error)
	Output  io.Writer
	// Setup runs after machine construction, before execution (for
	// scenario-specific machine preparation).
	Setup func(*vm.Machine)

	// Timeout, when positive, bounds the run's wall-clock time: the run's
	// context gets a deadline and the interpreter stops with a
	// TrapCancelled (errors.Is(err, context.DeadlineExceeded)) when it
	// expires.
	Timeout time.Duration
	// StepBudget, when positive, overrides Options.MaxSteps. It is
	// applied after Options, so it wins regardless of how Options was
	// populated.
	StepBudget int64
	// MaxOutputBytes caps the internally captured program output (used
	// only when Output is nil). Zero means DefaultMaxOutputBytes;
	// negative means unlimited. Truncation is reported in
	// RunResult.OutputTruncated, never as an execution error.
	MaxOutputBytes int
	// Worker, when non-nil, lends the run an engine worker's reusable
	// machine state (see vm.WorkerState). Engine-internal.
	Worker *vm.WorkerState

	// Optimize selects whether the run executes the PAC-elision-optimized
	// build. The zero value follows the process default (RSTI_OPT).
	Optimize OptimizeMode

	// Tier selects whether the run may promote hot functions to the
	// direct-threaded execution tier. The zero value follows the process
	// default (RSTI_TIER).
	Tier TierMode
}

// PARTSPACCost is the per-instruction cycle charge for the PARTS
// baseline's PA operations. PARTS' published nbench overhead (19.5%) is
// an order of magnitude above RSTI's (1.54%) despite instrumenting the
// same pointer loads/stores; the paper attributes the gap to RSTI's use
// of inlined LLVM ptrauth intrinsics, a backend-placed pass, LTO and -O2,
// versus PARTS' call-based instrumentation with register spills. The
// baseline therefore charges ~11x RSTI's per-op cost, reproducing that
// implementation-quality gap.
const PARTSPACCost = 22

// Run executes a build with a background context; see RunContext.
func (c *Compilation) Run(mech sti.Mechanism, cfg RunConfig) (*RunResult, error) {
	return c.RunContext(context.Background(), mech, cfg)
}

// RunContext executes a build under ctx. Cancellation and cfg.Timeout are
// enforced by the interpreter's step-loop checkpoints: the run returns a
// RunResult whose Err is a *TrapError of kind vm.TrapCancelled wrapping
// the context's error. Compile/instrumentation failures (not execution
// outcomes) are returned as RunContext's own error.
func (c *Compilation) RunContext(ctx context.Context, mech sti.Mechanism, cfg RunConfig) (*RunResult, error) {
	b, err := c.BuildMode(mech, cfg.Optimize.Enabled())
	if err != nil {
		return nil, err
	}
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	if cfg.Options.MaxSteps == 0 {
		tier, thr := cfg.Options.Tier, cfg.Options.TierThreshold
		cfg.Options = vm.DefaultOptions()
		cfg.Options.Tier, cfg.Options.TierThreshold = tier, thr
	}
	if cfg.StepBudget > 0 {
		cfg.Options.MaxSteps = cfg.StepBudget
	}
	if mech == sti.PARTS {
		cfg.Options.Cost.PAC = PARTSPACCost
	}
	var sink *outputCapture
	if cfg.Output != nil {
		cfg.Options.Output = cfg.Output
	} else {
		limit := cfg.MaxOutputBytes
		if limit == 0 {
			limit = DefaultMaxOutputBytes
		}
		sink = &outputCapture{limit: limit}
		if cfg.Worker != nil {
			sink.buf = cfg.Worker.OutputBuffer()
		}
		cfg.Options.Output = sink
	}
	cfg.Options.Worker = cfg.Worker
	// Resolve the execution tier: an explicit RunConfig.Tier wins, then an
	// explicit Options.Tier (the vm-level escape hatch), then RSTI_TIER.
	tierOn := cfg.Options.Tier
	switch cfg.Tier {
	case TierOn:
		tierOn = true
	case TierOff:
		tierOn = false
	default:
		tierOn = tierOn || DefaultTier()
	}
	cfg.Options.Tier = tierOn
	cfg.Options.Image = b.ImageFor(tierOn)
	// An engine worker's run reuses the worker's resident machine when the
	// (image, config) shape matches — a Reset instead of a rebuild, so
	// steady-state serving constructs nothing per run.
	var m *vm.Machine
	if cfg.Worker != nil {
		m = cfg.Worker.MachineFor(b.Prog, cfg.Options)
	} else {
		m = vm.New(b.Prog, cfg.Options)
	}
	m.SetContext(ctx)
	for id, h := range cfg.Hooks {
		m.RegisterHook(id, h)
	}
	for name, fn := range cfg.Externs {
		m.RegisterExtern(name, fn)
	}
	if cfg.Setup != nil {
		cfg.Setup(m)
	}
	exit, err := m.Run()
	res := &RunResult{Mechanism: mech, Exit: exit, Err: err, Stats: m.Stats}
	if t, ok := vm.AsTrap(err); ok {
		res.Trap = t
		res.Err = newTrapError(t, mech)
	}
	if sink != nil {
		res.Output = sink.String()
		res.OutputTruncated = sink.truncated
		if cfg.Worker != nil {
			cfg.Worker.StowOutputBuffer(sink.buf)
		}
	}
	return res, nil
}

// outputCapture buffers program output up to limit bytes (negative =
// unlimited); overflow is counted, not stored, so a printf loop cannot
// grow host memory without bound.
type outputCapture struct {
	buf       []byte
	limit     int
	truncated bool
}

func (o *outputCapture) Write(p []byte) (int, error) {
	n := len(p)
	if o.limit >= 0 {
		if room := o.limit - len(o.buf); room < n {
			if room < 0 {
				room = 0
			}
			p = p[:room]
			o.truncated = true
		}
	}
	o.buf = append(o.buf, p...)
	return n, nil
}

func (o *outputCapture) String() string { return string(o.buf) }

// RunAll executes the program under every requested mechanism with the
// same configuration, returning results in mechanism order.
func (c *Compilation) RunAll(mechs []sti.Mechanism, cfg RunConfig) ([]*RunResult, error) {
	out := make([]*RunResult, 0, len(mechs))
	for _, m := range mechs {
		r, err := c.Run(m, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// Overhead returns the relative cycle overhead of a protected run against
// a baseline run of the same workload: (protected - base) / base.
func Overhead(base, protected *RunResult) float64 {
	if base.Stats.Cycles == 0 {
		return 0
	}
	return float64(protected.Stats.Cycles-base.Stats.Cycles) / float64(base.Stats.Cycles)
}

package core

import (
	"testing"

	"rsti/internal/sti"
	"rsti/internal/vm"
)

// pacReuseSrc signs and authenticates enough distinct (pointer,
// modifier) pairs that a stale PAC-cache hit — one mechanism's cached
// PAC surviving into another mechanism's run — would flip an
// authentication somewhere.
const pacReuseSrc = `
struct node { long v; struct node *next; long (*op)(long); };
long bump(long x) { return x + 1; }
long twice(long x) { return x * 2; }
struct node *head;
int main(void) {
	head = (struct node*) malloc(sizeof(struct node));
	head->v = 5;
	head->op = bump;
	struct node *tail = head;
	for (long i = 0; i < 24; i++) {
		struct node *n = (struct node*) malloc(sizeof(struct node));
		n->v = i;
		n->op = (i & 1) ? bump : twice;
		n->next = NULL;
		tail->next = n;
		tail = n;
	}
	long sum = 0;
	struct node *p = head;
	while (p != NULL) { sum += p->op(p->v); p = p->next; }
	return (int)(sum & 63);
}
`

// fingerprint is the mechanism-visible portion of a run's outcome: the
// PAC cache counters are deliberately excluded (warm caches change hit
// rates, never results).
type fingerprint struct {
	exit                        int64
	trapped                     bool
	cycles, instrs              int64
	signs, auths, strips, ppops int64
}

func fingerprintOf(r *RunResult) fingerprint {
	return fingerprint{
		exit: r.Exit, trapped: r.Err != nil,
		cycles: r.Stats.Cycles, instrs: r.Stats.Instrs,
		signs: r.Stats.PacSigns, auths: r.Stats.PacAuths,
		strips: r.Stats.PacStrips, ppops: r.Stats.PPOps,
	}
}

// TestPACMemoizationAcrossMechanismAlternation is the stale-hit
// regression test: one compiled program is run through a single shared
// vm.WorkerState — the engine's reuse shape, where every mechanism's
// runs share one warm pa.Unit per (config, seed) — alternating
// mechanisms, and every warm result must be bit-identical to a cold,
// self-contained run of the same mechanism. A PAC cache entry that
// failed to key on the full (pointer, key, modifier) triple would leak
// one mechanism's PAC into another's Sign/Auth here and flip the
// fingerprint.
func TestPACMemoizationAcrossMechanismAlternation(t *testing.T) {
	c, err := Compile(pacReuseSrc)
	if err != nil {
		t.Fatal(err)
	}
	cold := make(map[sti.Mechanism]fingerprint)
	for _, mech := range []sti.Mechanism{sti.None, sti.PARTS, sti.STWC, sti.STC, sti.STL, sti.Adaptive} {
		res, err := c.Run(mech, RunConfig{})
		if err != nil {
			t.Fatalf("cold %s: %v", mech, err)
		}
		cold[mech] = fingerprintOf(res)
	}

	ws := vm.NewWorkerState()
	// The alternation deliberately revisits each mechanism several
	// times with the others interleaved, so later runs authenticate
	// against cache lines the earlier mechanisms populated.
	order := []sti.Mechanism{
		sti.STWC, sti.STL, sti.STC, sti.STWC, sti.PARTS, sti.STL,
		sti.Adaptive, sti.STC, sti.STWC, sti.None, sti.STL, sti.STWC,
	}
	for i, mech := range order {
		res, err := c.Run(mech, RunConfig{Worker: ws})
		if err != nil {
			t.Fatalf("warm run %d (%s): %v", i, mech, err)
		}
		if got, want := fingerprintOf(res), cold[mech]; got != want {
			t.Fatalf("warm run %d (%s) diverges from cold run:\nwarm %+v\ncold %+v",
				i, mech, got, want)
		}
	}
}

// TestPACMemoizationAfterAttackRun: an attacked run pushes forged and
// replayed values through the shared unit's cache; subsequent benign
// runs on the same WorkerState must be untouched by that history.
func TestPACMemoizationAfterAttackRun(t *testing.T) {
	src := `
int ok(void) { return 1; }
int evil(void) { return 66; }
int (*h)(void);
int main(void) { h = ok; __hook(1); return h(); }
`
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := map[int64]vm.Hook{1: func(m *vm.Machine) error {
		addr, _ := m.GlobalAddr("h")
		tok, _ := m.FuncToken("evil")
		return m.Mem.Poke(addr, tok, 8)
	}}

	coldBenign, err := c.Run(sti.STWC, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}

	ws := vm.NewWorkerState()
	for round := 0; round < 3; round++ {
		attacked, err := c.Run(sti.STWC, RunConfig{Worker: ws, Hooks: corrupt})
		if err != nil {
			t.Fatalf("round %d attacked: %v", round, err)
		}
		if !attacked.Detected() {
			t.Fatalf("round %d: hijack not detected on warm worker state", round)
		}
		benign, err := c.Run(sti.STWC, RunConfig{Worker: ws})
		if err != nil {
			t.Fatalf("round %d benign: %v", round, err)
		}
		if got, want := fingerprintOf(benign), fingerprintOf(coldBenign); got != want {
			t.Fatalf("round %d: benign run poisoned by attack history:\nwarm %+v\ncold %+v",
				round, got, want)
		}
	}
}

// TestWarmCacheActuallyHits guards the test above against vacuity: the
// alternation must actually be exercising warm cache lines (hits on a
// revisited mechanism), otherwise the stale-hit class is untested.
func TestWarmCacheActuallyHits(t *testing.T) {
	c, err := Compile(pacReuseSrc)
	if err != nil {
		t.Fatal(err)
	}
	ws := vm.NewWorkerState()
	if _, err := c.Run(sti.STWC, RunConfig{Worker: ws}); err != nil {
		t.Fatal(err)
	}
	second, err := c.Run(sti.STWC, RunConfig{Worker: ws})
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.PACCacheMisses != 0 {
		// The program's working set fits the 4096-entry cache, so a
		// revisit must be all hits; misses mean reuse is not happening
		// and this file's regression tests are testing nothing.
		t.Fatalf("second warm run missed %d times (hits %d); worker-state reuse broken?",
			second.Stats.PACCacheMisses, second.Stats.PACCacheHits)
	}
	if second.Stats.PACCacheHits == 0 {
		t.Fatal("second warm run recorded no PAC activity at all")
	}
}

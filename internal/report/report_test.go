package report

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomeanKnownValues(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{0}, 0},
		{[]float64{0.21, 0.1}, 0.1545}, // sqrt(1.21*1.10)-1
		{[]float64{0.05, 0.05, 0.05}, 0.05},
	}
	for _, c := range cases {
		got := Geomean(c.xs)
		if math.Abs(got-c.want) > 1e-3 {
			t.Errorf("Geomean(%v) = %v, want ~%v", c.xs, got, c.want)
		}
	}
}

func TestGeomeanBetweenMinAndMax(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		min, max := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			x := math.Mod(math.Abs(r), 2.0) // overheads in [0, 2)
			if math.IsNaN(x) {
				continue
			}
			xs = append(xs, x)
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := Geomean(xs)
		return g >= min-1e-9 && g <= max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %v", m)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Median != 7 || s.Q1 != 7 || s.Q3 != 7 {
		t.Errorf("singleton summary = %+v", s)
	}
	if z := Summarize(nil); z.Max != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestSummarizeOrderInvariance(t *testing.T) {
	a := Summarize([]float64{5, 1, 4, 2, 3})
	b := Summarize([]float64{1, 2, 3, 4, 5})
	if a != b {
		t.Errorf("order affects summary: %+v vs %+v", a, b)
	}
}

func TestPercent(t *testing.T) {
	if Percent(0.0529) != "5.29%" {
		t.Errorf("Percent = %q", Percent(0.0529))
	}
	if Percent(0) != "0.00%" {
		t.Errorf("Percent(0) = %q", Percent(0))
	}
	if Percent(-0.015) != "-1.50%" {
		t.Errorf("Percent(-0.015) = %q", Percent(-0.015))
	}
}

func TestTableAlignment(t *testing.T) {
	tb := &Table{Title: "demo", Headers: []string{"name", "v"}}
	tb.Add("a", "1")
	tb.Add("longer-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// The value column must start at the same offset in every data line.
	idx := strings.Index(lines[1], "v")
	for _, l := range lines[3:] {
		if len(l) <= idx {
			t.Fatalf("row %q shorter than header", l)
		}
	}
	if !strings.HasPrefix(lines[0], "demo") {
		t.Errorf("title missing: %q", lines[0])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("separator missing: %q", lines[2])
	}
}

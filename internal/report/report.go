// Package report provides the small numeric and formatting helpers the
// evaluation harness uses: geometric means, five-number summaries for the
// Figure 10 box plots, and aligned text tables.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Geomean returns the geometric mean of overhead factors expressed as
// fractions (0.05 = 5%). As the paper does for overheads, values are
// shifted by 1 before averaging so zero and near-zero overheads are
// well-defined: geomean(1+x_i) - 1.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log1p(x)
	}
	return math.Expm1(sum / float64(len(xs)))
}

// Mean is the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// FiveNumber is a box-plot summary.
type FiveNumber struct {
	Min, Q1, Median, Q3, Max float64
}

// Summarize computes the five-number summary of xs.
func Summarize(xs []float64) FiveNumber {
	if len(xs) == 0 {
		return FiveNumber{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	q := func(p float64) float64 {
		if len(s) == 1 {
			return s[0]
		}
		pos := p * float64(len(s)-1)
		lo := int(pos)
		frac := pos - float64(lo)
		if lo+1 >= len(s) {
			return s[len(s)-1]
		}
		return s[lo]*(1-frac) + s[lo+1]*frac
	}
	return FiveNumber{Min: s[0], Q1: q(0.25), Median: q(0.5), Q3: q(0.75), Max: s[len(s)-1]}
}

// Percent renders a fraction as a percentage with two decimals.
func Percent(x float64) string { return fmt.Sprintf("%.2f%%", x*100) }

// Table is an aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with column alignment.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

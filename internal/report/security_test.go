package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleRecord(label string, largest int, pairs int64) *SecurityRecord {
	rec := &SecurityRecord{
		Label:     label,
		Timestamp: "2026-01-01T00:00:00Z",
		Workloads: []WorkloadSecurity{{
			Name: "sec-small",
			Mechs: map[string]MechSecurity{
				"rsti-stwc": {Classes: 10, Members: 30, LargestClass: largest, ReplayPairs: pairs,
					SizeDist: Summarize([]float64{1, 2, float64(largest)})},
				"rsti-stl": {Classes: 30, Members: 30, LargestClass: 1, ReplayPairs: 0,
					SizeDist: Summarize([]float64{1})},
			},
			SynthTampers:    5,
			SynthConfirmed:  5,
			SynthFamilies:   []string{"replay-same-class", "raw-overwrite"},
			ConfirmedDetect: map[string]int{"rsti-stwc": 3, "rsti-stl": 5},
			ConfirmedMiss:   map[string]int{"rsti-stwc": 2},
		}},
		Table3: []Table3Check{{Name: "p1", PartitionSTWC: 4, EquivSTWC: 4, PartitionSTC: 3, EquivSTC: 3, OK: true}},
	}
	rec.Finalize()
	return rec
}

func TestSecurityRecordFinalize(t *testing.T) {
	rec := sampleRecord("a", 8, 40)
	if rec.MaxLargestClass["rsti-stwc"] != 8 {
		t.Errorf("MaxLargestClass[rsti-stwc] = %d, want 8", rec.MaxLargestClass["rsti-stwc"])
	}
	if rec.MaxLargestClass["rsti-stl"] != 1 {
		t.Errorf("MaxLargestClass[rsti-stl] = %d, want 1", rec.MaxLargestClass["rsti-stl"])
	}
	if rec.TotalReplayPairs["rsti-stwc"] != 40 {
		t.Errorf("TotalReplayPairs[rsti-stwc] = %d, want 40", rec.TotalReplayPairs["rsti-stwc"])
	}
}

func TestSecurityRecordRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "SECURITY_RESULTS.json")

	records, err := ReadSecurityRecords(path)
	if err != nil || records != nil {
		t.Fatalf("missing trajectory: got %v, %v; want nil, nil", records, err)
	}

	for _, label := range []string{"first", "second"} {
		if err := AppendSecurityRecord(path, sampleRecord(label, 8, 40)); err != nil {
			t.Fatalf("append %s: %v", label, err)
		}
	}
	records, err = ReadSecurityRecords(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(records) != 2 || records[0].Label != "first" || records[1].Label != "second" {
		t.Fatalf("round trip lost records: %+v", records)
	}
	if records[1].Workloads[0].Mechs["rsti-stwc"].ReplayPairs != 40 {
		t.Errorf("replay pairs lost in round trip")
	}

	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSecurityRecords(path); err == nil {
		t.Error("corrupt trajectory file read without error")
	}
}

// TestSecurityRegressions exercises the exact zero-tolerance guard: equal
// or shrinking aggregates pass, any growth of largest class or replay
// surface is flagged per mechanism.
func TestSecurityRegressions(t *testing.T) {
	base := sampleRecord("base", 8, 40)
	history := []SecurityRecord{*base}

	if regs := SecurityRegressions(nil, base); regs != nil {
		t.Errorf("no history should mean no regressions, got %v", regs)
	}
	if regs := SecurityRegressions(history, sampleRecord("same", 8, 40)); regs != nil {
		t.Errorf("identical aggregates flagged: %v", regs)
	}
	if regs := SecurityRegressions(history, sampleRecord("better", 6, 20)); regs != nil {
		t.Errorf("improvement flagged: %v", regs)
	}

	regs := SecurityRegressions(history, sampleRecord("worse", 9, 41))
	if len(regs) != 2 {
		t.Fatalf("largest-class and replay-surface growth should both flag, got %v", regs)
	}
	for _, r := range regs {
		if !strings.Contains(r, "rsti-stwc") {
			t.Errorf("regression line does not name the mechanism: %q", r)
		}
	}

	// Growth in only one aggregate still flags.
	regs = SecurityRegressions(history, sampleRecord("pairs-only", 8, 41))
	if len(regs) != 1 || !strings.Contains(regs[0], "replay surface") {
		t.Errorf("pairs-only growth: got %v", regs)
	}
}

func TestHasSecurityWaiver(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "CHANGES.md")

	if HasSecurityWaiver(path) {
		t.Error("missing change log reported a waiver")
	}
	os.WriteFile(path, []byte("- PR 9: routine change\n"), 0o644)
	if HasSecurityWaiver(path) {
		t.Error("waiver found in log without one")
	}
	os.WriteFile(path, []byte("- PR 9: new workload (security-waiver: suite grew on purpose)\n"), 0o644)
	if !HasSecurityWaiver(path) {
		t.Error("waiver note not found")
	}
}

func TestSecurityMarkdownAndSummary(t *testing.T) {
	rec := sampleRecord("pr-test", 8, 40)
	md := rec.Markdown()
	for _, want := range []string{
		"# Security dashboard — pr-test",
		"| sec-small | rsti-stwc | 10 | 30 | 8 | 40 |",
		"| sec-small | rsti-stl | 30 | 30 | 1 | 0 |",
		"3 det / 2 miss",
		"1/1 static-corpus programs",
		"security-waiver:",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("dashboard missing %q\n%s", want, md)
		}
	}
	if strings.Contains(md, "PROBLEM") {
		t.Errorf("clean record rendered a problem block:\n%s", md)
	}

	rec.Workloads[0].SynthProblems = []string{"prediction mismatch on tamper X"}
	if md := rec.Markdown(); !strings.Contains(md, "**PROBLEM** (sec-small): prediction mismatch") {
		t.Errorf("problem block not rendered:\n%s", md)
	}

	sum := rec.Summary()
	if !strings.Contains(sum, "rsti-stl") || !strings.Contains(sum, "pr-test") {
		t.Errorf("summary missing content:\n%s", sum)
	}
}

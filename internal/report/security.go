// Security-analytics subsystem: the data model, serialization, markdown
// dashboard and trajectory guard for SECURITY_RESULTS.json. Where
// BENCH_RESULTS.json tracks host-side performance (with a tolerance
// threshold, because wall clocks are noisy), the security trajectory is
// fully deterministic — equivalence-class partitions and synthesized
// attack outcomes are functions of the source alone — so its guard is
// exact: ANY growth of a mechanism's largest class or replay surface
// against the previous datapoint fails, unless CHANGES.md carries an
// explicit waiver note.
package report

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// SecurityMechs is the mechanism column order of the dashboard.
var SecurityMechs = []string{"parts", "rsti-stwc", "rsti-stc", "rsti-adaptive", "rsti-stl"}

// MechSecurity is one (workload, mechanism) cell: the shape of the PAC
// equivalence-class partition over the program's protected pointers.
type MechSecurity struct {
	// Classes is the number of enforcement classes the mechanism
	// partitions the protected pointers into.
	Classes int `json:"classes"`
	// Members is the protected population (Table 3's NV).
	Members int `json:"members"`
	// LargestClass is the biggest class (the paper's "82 equivalent
	// variables" observation; 1 under STL by construction).
	LargestClass int `json:"largest_class"`
	// ReplayPairs is the replay surface: substitutable signed-pointer
	// pairs, Σ over classes of n·(n−1)/2 (0 under STL).
	ReplayPairs int64 `json:"replay_pairs"`
	// SizeDist summarizes the class-size distribution.
	SizeDist FiveNumber `json:"class_size_dist"`
}

// WorkloadSecurity is one workload's row: partition statistics per
// mechanism plus the attack-synthesis outcome.
type WorkloadSecurity struct {
	Name  string                  `json:"name"`
	Mechs map[string]MechSecurity `json:"mechanisms"`

	// SynthTampers / SynthConfirmed count the derived tampers executed
	// and the subset whose predicted detect/miss outcome, lattice
	// position and clean-miss behavior were all confirmed.
	SynthTampers   int      `json:"synth_tampers"`
	SynthConfirmed int      `json:"synth_confirmed"`
	SynthFamilies  []string `json:"synth_families,omitempty"`
	// ConfirmedDetect / ConfirmedMiss count confirmed tampers each
	// mechanism caught / provably missed — the blind-spot enumeration.
	ConfirmedDetect map[string]int `json:"confirmed_detect,omitempty"`
	ConfirmedMiss   map[string]int `json:"confirmed_miss,omitempty"`
	// SynthProblems lists prediction or lattice violations (must be
	// empty on a healthy pipeline).
	SynthProblems []string `json:"synth_problems,omitempty"`
}

// Table3Check is one static-corpus cross-validation row: the
// modifier-keyed partition must reproduce the independently computed
// Table 3 equivalence statistics exactly.
type Table3Check struct {
	Name          string `json:"name"`
	PartitionSTWC int    `json:"partition_stwc"`
	EquivSTWC     int    `json:"equiv_stwc"`
	PartitionSTC  int    `json:"partition_stc"`
	EquivSTC      int    `json:"equiv_stc"`
	OK            bool   `json:"ok"`
}

// SecurityRecord is one datapoint of the security trajectory.
type SecurityRecord struct {
	Label     string `json:"label"`
	Timestamp string `json:"timestamp"`

	Workloads []WorkloadSecurity `json:"workloads"`
	Table3    []Table3Check      `json:"table3_crosscheck,omitempty"`

	// Aggregates the trajectory guard compares: worst largest class and
	// total replay surface per mechanism across the workloads.
	MaxLargestClass  map[string]int   `json:"max_largest_class"`
	TotalReplayPairs map[string]int64 `json:"total_replay_pairs"`
}

// Finalize computes the guard aggregates from the workload rows.
func (r *SecurityRecord) Finalize() {
	r.MaxLargestClass = make(map[string]int)
	r.TotalReplayPairs = make(map[string]int64)
	for _, w := range r.Workloads {
		for mech, ms := range w.Mechs {
			if ms.LargestClass > r.MaxLargestClass[mech] {
				r.MaxLargestClass[mech] = ms.LargestClass
			}
			r.TotalReplayPairs[mech] += ms.ReplayPairs
		}
	}
}

// ReadSecurityRecords loads the trajectory at path; a missing file is an
// empty trajectory, not an error.
func ReadSecurityRecords(path string) ([]SecurityRecord, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var records []SecurityRecord
	if err := json.Unmarshal(data, &records); err != nil {
		return nil, fmt.Errorf("security trajectory %s is not a record array: %w", path, err)
	}
	return records, nil
}

// AppendSecurityRecord appends rec to the JSON trajectory at path
// (created if absent), keeping all previous datapoints.
func AppendSecurityRecord(path string, rec *SecurityRecord) error {
	records, err := ReadSecurityRecords(path)
	if err != nil {
		return err
	}
	records = append(records, *rec)
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// SecurityRegressions compares a fresh record's guard aggregates against
// the most recent prior datapoint and returns one line per mechanism
// whose largest class or replay surface GREW — the partition is
// deterministic, so the tolerance is zero. Nil means no prior record or
// no regression. Growth requires a "security-waiver:" note in CHANGES.md
// to pass CI.
func SecurityRegressions(records []SecurityRecord, rec *SecurityRecord) []string {
	if len(records) == 0 {
		return nil
	}
	prev := &records[len(records)-1]
	var regs []string
	mechs := make([]string, 0, len(rec.MaxLargestClass))
	for m := range rec.MaxLargestClass {
		mechs = append(mechs, m)
	}
	sort.Strings(mechs)
	for _, m := range mechs {
		if was, ok := prev.MaxLargestClass[m]; ok {
			if now := rec.MaxLargestClass[m]; now > was {
				regs = append(regs, fmt.Sprintf(
					"largest equivalence class under %s grew %d -> %d vs %q", m, was, now, prev.Label))
			}
		}
		if was, ok := prev.TotalReplayPairs[m]; ok {
			if now := rec.TotalReplayPairs[m]; now > was {
				regs = append(regs, fmt.Sprintf(
					"replay surface under %s grew %d -> %d pairs vs %q", m, was, now, prev.Label))
			}
		}
	}
	return regs
}

// SecurityWaiverToken is the marker a CHANGES.md entry must carry to let
// a security regression through CI (e.g. "security-waiver: new workload
// added to the suite").
const SecurityWaiverToken = "security-waiver:"

// HasSecurityWaiver reports whether the change log at path carries a
// waiver note. A missing file carries none.
func HasSecurityWaiver(changesPath string) bool {
	data, err := os.ReadFile(changesPath)
	if err != nil {
		return false
	}
	return strings.Contains(string(data), SecurityWaiverToken)
}

// Markdown renders the record as the per-PR dashboard.
func (r *SecurityRecord) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Security dashboard — %s\n\n", r.Label)
	fmt.Fprintf(&b, "Generated %s. All numbers are deterministic functions of the\n", r.Timestamp)
	b.WriteString("workload sources: the equivalence-class partition is recomputed from the\n")
	b.WriteString("STI analysis and every synthesized tamper is re-executed through the VM.\n\n")

	b.WriteString("## Equivalence-class partition per workload × mechanism\n\n")
	b.WriteString("`classes` counts enforcement classes over the protected pointer\n")
	b.WriteString("population (`members`); `largest` is the biggest interchangeable set;\n")
	b.WriteString("`replay pairs` is the substitution surface Σ n·(n−1)/2. Location binding\n")
	b.WriteString("(STL always, Adaptive above the ECV threshold) splits classes into\n")
	b.WriteString("singletons, which is why STL always shows `largest 1, pairs 0`.\n\n")
	b.WriteString("| workload | mechanism | classes | members | largest | replay pairs | class sizes (min/med/max) |\n")
	b.WriteString("|---|---|---:|---:|---:|---:|---|\n")
	for _, w := range r.Workloads {
		for _, mech := range SecurityMechs {
			ms, ok := w.Mechs[mech]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "| %s | %s | %d | %d | %d | %d | %.0f / %.0f / %.0f |\n",
				w.Name, mech, ms.Classes, ms.Members, ms.LargestClass, ms.ReplayPairs,
				ms.SizeDist.Min, ms.SizeDist.Median, ms.SizeDist.Max)
		}
	}

	b.WriteString("\n## Attack synthesis\n\n")
	b.WriteString("Tampers are derived from the compiled program (same-class substitution,\n")
	b.WriteString("same-type cross-scope replay, raw-pointer overwrite, elided-local\n")
	b.WriteString("corruption), predicted from modifier equality and location binding, and\n")
	b.WriteString("executed under every mechanism; `confirmed` means prediction, detection\n")
	b.WriteString("monotonicity and clean-miss behavior all held.\n\n")
	b.WriteString("| workload | tampers | confirmed | " + strings.Join(SecurityMechs, " | ") + " |\n")
	b.WriteString("|---|---:|---:|" + strings.Repeat("---|", len(SecurityMechs)) + "\n")
	for _, w := range r.Workloads {
		fmt.Fprintf(&b, "| %s | %d | %d |", w.Name, w.SynthTampers, w.SynthConfirmed)
		for _, mech := range SecurityMechs {
			fmt.Fprintf(&b, " %d det / %d miss |", w.ConfirmedDetect[mech], w.ConfirmedMiss[mech])
		}
		b.WriteByte('\n')
	}
	for _, w := range r.Workloads {
		for _, p := range w.SynthProblems {
			fmt.Fprintf(&b, "\n**PROBLEM** (%s): %s\n", w.Name, p)
		}
	}

	if len(r.Table3) > 0 {
		ok := 0
		for _, t := range r.Table3 {
			if t.OK {
				ok++
			}
		}
		fmt.Fprintf(&b, "\n## Table 3 cross-check\n\n%d/%d static-corpus programs: the modifier-keyed partition\nreproduces the independently computed equivalence statistics (STWC and STC\nclass counts) exactly.\n", ok, len(r.Table3))
		for _, t := range r.Table3 {
			if !t.OK {
				fmt.Fprintf(&b, "\n**MISMATCH** %s: partition STWC %d vs equiv %d, STC %d vs %d\n",
					t.Name, t.PartitionSTWC, t.EquivSTWC, t.PartitionSTC, t.EquivSTC)
			}
		}
	}

	b.WriteString("\n## Trajectory aggregates (guard inputs)\n\n")
	b.WriteString("| mechanism | max largest class | total replay pairs |\n|---|---:|---:|\n")
	for _, mech := range SecurityMechs {
		fmt.Fprintf(&b, "| %s | %d | %d |\n", mech, r.MaxLargestClass[mech], r.TotalReplayPairs[mech])
	}
	b.WriteString("\nCI fails if either column grows against the previous datapoint without\na `security-waiver:` note in CHANGES.md.\n")
	return b.String()
}

// Summary renders a terminal digest of the record.
func (r *SecurityRecord) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "security trajectory datapoint %q: %d workloads\n", r.Label, len(r.Workloads))
	t := &Table{Headers: []string{"mechanism", "max largest class", "total replay pairs", "confirmed det", "confirmed miss"}}
	for _, mech := range SecurityMechs {
		det, miss := 0, 0
		for _, w := range r.Workloads {
			det += w.ConfirmedDetect[mech]
			miss += w.ConfirmedMiss[mech]
		}
		t.Add(mech, fmt.Sprintf("%d", r.MaxLargestClass[mech]),
			fmt.Sprintf("%d", r.TotalReplayPairs[mech]),
			fmt.Sprintf("%d", det), fmt.Sprintf("%d", miss))
	}
	b.WriteString(t.String())
	return b.String()
}

package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// fakePeer is an httptest peer serving the two peer endpoints: health
// (flippable) and artifact (returns its name + the requested source, so
// tests can see exactly who served what).
type fakePeer struct {
	name    string
	srv     *httptest.Server
	healthy atomic.Bool
	hits    atomic.Int64
	lastKey atomic.Value // string: last PeerKeyHeader seen
}

func newFakePeer(t *testing.T, name string) *fakePeer {
	t.Helper()
	p := &fakePeer{name: name}
	p.healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc(PeerHealthPath, func(w http.ResponseWriter, r *http.Request) {
		if !p.healthy.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc(PeerArtifactPath, func(w http.ResponseWriter, r *http.Request) {
		if !p.healthy.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		p.lastKey.Store(r.Header.Get(PeerKeyHeader))
		var req struct {
			Source string `json:"source"`
		}
		body, _ := io.ReadAll(r.Body)
		if err := json.Unmarshal(body, &req); err != nil {
			http.Error(w, "bad body", http.StatusBadRequest)
			return
		}
		p.hits.Add(1)
		fmt.Fprintf(w, "artifact:%s:%s", p.name, req.Source)
	})
	p.srv = httptest.NewServer(mux)
	t.Cleanup(p.srv.Close)
	return p
}

// clusterOf builds one router ("self") plus n fake peers.
func clusterOf(t *testing.T, n int, secret string) (*Router, []*fakePeer) {
	t.Helper()
	peers := make([]*fakePeer, n)
	urls := make([]string, n)
	for i := range peers {
		peers[i] = newFakePeer(t, fmt.Sprintf("peer%d", i))
		urls[i] = peers[i].srv.URL
	}
	r, err := New(Config{Self: "http://self.invalid:0", Peers: urls, Secret: secret})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(r.Stop)
	return r, peers
}

// TestRouterFetchRoutesToOwner: every fetch lands on the ring owner, the
// shared secret travels with it, and the returned bytes are the owner's
// artifact.
func TestRouterFetchRoutesToOwner(t *testing.T) {
	r, peers := clusterOf(t, 3, "s3cret")
	byURL := map[string]*fakePeer{}
	for _, p := range peers {
		byURL[p.srv.URL] = p
	}
	served := 0
	for i := 0; i < 40; i++ {
		src := fmt.Sprintf("int main() { return %d; }", i)
		owner := r.Owner(src)
		raw, err := r.FetchArtifact(src)
		if owner == "http://self.invalid:0" {
			if raw != nil || err != nil {
				t.Fatalf("self-owned source returned (%v, %v), want (nil, nil)", raw, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("fetch from %s: %v", owner, err)
		}
		want := fmt.Sprintf("artifact:%s:%s", byURL[owner].name, src)
		if string(raw) != want {
			t.Fatalf("fetched %q, want %q", raw, want)
		}
		if got := byURL[owner].lastKey.Load(); got != "s3cret" {
			t.Fatalf("peer saw secret %q, want s3cret", got)
		}
		served++
	}
	if served == 0 {
		t.Fatal("no source hashed to a remote owner across 40 sources")
	}
	s := r.Stats()
	if s.ForwardHits != int64(served) || s.ForwardErrors != 0 {
		t.Fatalf("stats %+v, want %d hits, 0 errors", s, served)
	}
	if s.ForwardP50Ms <= 0 || s.ForwardP99Ms < s.ForwardP50Ms {
		t.Fatalf("latency quantiles not recorded: %+v", s)
	}
}

// TestRouterOwnerFailureFallsBack: a dead owner yields (nil, err) — the
// cache's local-compile fallback — and after DownAfter consecutive
// failures the peer leaves the ring, so later lookups for its keys remap
// to surviving members and stop erroring.
func TestRouterOwnerFailureFallsBack(t *testing.T) {
	r, peers := clusterOf(t, 2, "")
	// Find a source owned by peer 0.
	victim := peers[0]
	var src string
	for i := 0; ; i++ {
		s := fmt.Sprintf("int main() { return %d; }", i)
		if r.Owner(s) == victim.srv.URL {
			src = s
			break
		}
	}
	victim.healthy.Store(false)

	sawError := false
	for i := 0; i < DefaultDownAfter; i++ {
		if _, err := r.FetchArtifact(src); err != nil {
			sawError = true
		}
	}
	if !sawError {
		t.Fatal("no fetch against the dead owner returned an error")
	}
	// The victim is now Down and out of the ring; its keys remapped.
	if owner := r.Owner(src); owner == victim.srv.URL {
		t.Fatalf("dead peer still owns keys after %d failures", DefaultDownAfter)
	}
	s := r.Stats()
	if len(s.Peers) != 2 {
		t.Fatalf("peer table has %d rows, want 2", len(s.Peers))
	}
	for _, pi := range s.Peers {
		if pi.URL == victim.srv.URL {
			if pi.State != "down" || pi.InRing {
				t.Fatalf("victim row %+v, want state=down, out of ring", pi)
			}
		}
	}

	// Recovery: a successful probe returns the peer to the ring.
	victim.healthy.Store(true)
	r.ProbeNow()
	if owner := r.Owner(src); owner != victim.srv.URL {
		t.Fatalf("recovered peer did not regain its keys (owner %s)", owner)
	}
	if raw, err := r.FetchArtifact(src); err != nil || len(raw) == 0 {
		t.Fatalf("fetch after recovery: (%q, %v)", raw, err)
	}
}

// TestRouterHeartbeatStateMachine: probe outcomes walk a peer through
// alive -> suspect -> down and back, with membership changing only at
// the down boundary.
func TestRouterHeartbeatStateMachine(t *testing.T) {
	r, peers := clusterOf(t, 3, "")
	target := peers[1]
	ringBefore := r.Ring().Size()
	if ringBefore != 4 { // self + 3
		t.Fatalf("initial ring size %d, want 4", ringBefore)
	}

	target.healthy.Store(false)
	r.ProbeNow() // one failure: suspect, still in the ring
	s := r.Stats()
	var row PeerInfo
	for _, pi := range s.Peers {
		if pi.URL == target.srv.URL {
			row = pi
		}
	}
	if row.State != "suspect" || !row.InRing {
		t.Fatalf("after 1 failure: %+v, want suspect + in ring", row)
	}
	if r.Ring().Size() != 4 {
		t.Fatalf("suspect peer left the ring")
	}

	for i := 1; i < DefaultDownAfter; i++ {
		r.ProbeNow()
	}
	if r.Ring().Size() != 3 {
		t.Fatalf("ring size %d after %d failures, want 3", r.Ring().Size(), DefaultDownAfter)
	}

	target.healthy.Store(true)
	r.ProbeNow()
	if r.Ring().Size() != 4 {
		t.Fatalf("recovered peer not re-admitted (ring size %d)", r.Ring().Size())
	}
}

// TestRouterSelfFilteredFromPeers: passing the full fleet list (self
// included) to every node is the intended deployment shape; self must
// not be probed or forwarded to.
func TestRouterSelfFilteredFromPeers(t *testing.T) {
	r, err := New(Config{Self: "http://a:1", Peers: []string{"http://a:1", "http://b:2", "http://b:2"}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer r.Stop()
	if n := r.Ring().Size(); n != 2 {
		t.Fatalf("ring size %d, want 2 (self + b, deduped)", n)
	}
	s := r.Stats()
	if len(s.Peers) != 1 || s.Peers[0].URL != "http://b:2" {
		t.Fatalf("peer table %+v, want just b", s.Peers)
	}
}

package cluster

import (
	"crypto/sha256"
	"fmt"
	"testing"
)

// testKeys returns n deterministic source digests (hashing a counter, so
// the keys are uniform on the circle the same way real source hashes
// are).
func testKeys(n int) [][32]byte {
	keys := make([][32]byte, n)
	for i := range keys {
		keys[i] = sha256.Sum256([]byte(fmt.Sprintf("source-%d", i)))
	}
	return keys
}

func peerNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

// TestRingBalance: with DefaultReplicas virtual nodes, ownership across
// 2..16 peers stays balanced — the busiest peer owns at most 2x the keys
// of the least busy one, and nobody owns zero.
func TestRingBalance(t *testing.T) {
	keys := testKeys(20000)
	for n := 2; n <= 16; n++ {
		ring := NewRing(0, peerNames(n)...)
		counts := make(map[string]int, n)
		for _, k := range keys {
			counts[ring.Owner(k)]++
		}
		if len(counts) != n {
			t.Fatalf("%d peers: only %d received keys", n, len(counts))
		}
		min, max := len(keys), 0
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if min == 0 {
			t.Fatalf("%d peers: a peer owns zero keys", n)
		}
		if ratio := float64(max) / float64(min); ratio > 2.0 {
			t.Fatalf("%d peers: max/min ownership ratio %.2f exceeds 2.0 (min=%d max=%d)",
				n, ratio, min, max)
		}
	}
}

// TestRingMinimalRemapOnJoin: adding one peer to an N-peer ring moves
// roughly 1/(N+1) of the keys — and never more than twice that — and
// every moved key lands on the new peer. Keys that stay put keep their
// exact owner, which is what preserves warm artifacts across scale-out.
func TestRingMinimalRemapOnJoin(t *testing.T) {
	keys := testKeys(20000)
	for n := 2; n <= 12; n++ {
		peers := peerNames(n + 1)
		before := NewRing(0, peers[:n]...)
		after := NewRing(0, peers...)
		newcomer := peers[n]
		moved := 0
		for _, k := range keys {
			a, b := before.Owner(k), after.Owner(k)
			if a == b {
				continue
			}
			moved++
			if b != newcomer {
				t.Fatalf("%d->%d peers: key moved %s -> %s, not to the newcomer", n, n+1, a, b)
			}
		}
		expected := float64(len(keys)) / float64(n+1)
		if float64(moved) > 2*expected {
			t.Fatalf("%d->%d peers: %d keys moved, want <= %.0f (2x the fair share %.0f)",
				n, n+1, moved, 2*expected, expected)
		}
		if moved == 0 {
			t.Fatalf("%d->%d peers: newcomer received nothing", n, n+1)
		}
	}
}

// TestRingMinimalRemapOnLeave: removing a peer remaps exactly the keys
// it owned; every other key keeps its owner. This is the graceful-
// degradation half of the ownership contract — a peer going Down must
// not shuffle artifacts between surviving peers.
func TestRingMinimalRemapOnLeave(t *testing.T) {
	keys := testKeys(20000)
	peers := peerNames(5)
	full := NewRing(0, peers...)
	leaver := peers[2]
	without := NewRing(0, peers[0], peers[1], peers[3], peers[4])
	for _, k := range keys {
		a, b := full.Owner(k), without.Owner(k)
		if a == leaver {
			if b == leaver {
				t.Fatalf("removed peer still owns a key")
			}
			continue // orphaned keys may land anywhere among survivors
		}
		if a != b {
			t.Fatalf("key not owned by the leaver moved: %s -> %s", a, b)
		}
	}
}

// TestRingAgreementAcrossConstructionOrder: rings built from the same
// member set in different orders assign every key identically —
// independent peers converge on owners without coordination.
func TestRingAgreementAcrossConstructionOrder(t *testing.T) {
	keys := testKeys(5000)
	peers := peerNames(7)
	forward := NewRing(0, peers...)
	reversed := make([]string, len(peers))
	for i, p := range peers {
		reversed[len(peers)-1-i] = p
	}
	backward := NewRing(0, reversed...)
	for _, k := range keys {
		if forward.Owner(k) != backward.Owner(k) {
			t.Fatalf("construction order changed ownership")
		}
	}
}

// TestRingDegenerateCases: empty and single-member rings behave.
func TestRingDegenerateCases(t *testing.T) {
	empty := NewRing(0)
	if got := empty.Owner(sha256.Sum256([]byte("x"))); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
	solo := NewRing(0, "http://only:1", "http://only:1", "")
	if solo.Size() != 1 {
		t.Fatalf("duplicate/empty members not collapsed: size %d", solo.Size())
	}
	if got := solo.Owner(sha256.Sum256([]byte("x"))); got != "http://only:1" {
		t.Fatalf("single-member ring owner = %q", got)
	}
}

package cluster

import "time"

// PeerState is a peer's position in the health state machine. A peer is
// Alive until a heartbeat probe fails, Suspect while failures accumulate,
// and Down after DownAfter consecutive failures. Suspect peers stay in
// the ring — a single dropped probe must not remap 1/N of the key space —
// while Down peers leave it until a probe succeeds again.
type PeerState int

const (
	Alive PeerState = iota
	Suspect
	Down
)

func (s PeerState) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	}
	return "unknown"
}

// DefaultDownAfter is the consecutive-failure threshold that moves a
// Suspect peer to Down. Three failures at the default heartbeat interval
// tolerates one GC pause or dropped packet without churning the ring,
// while a genuinely dead peer leaves within a few seconds.
const DefaultDownAfter = 3

// peerHealth is the router's per-peer record; guarded by Router.mu.
type peerHealth struct {
	url      string
	state    PeerState
	fails    int       // consecutive probe failures
	lastSeen time.Time // last successful probe (zero until the first)
	probes   int64     // total probes sent
}

// observe folds one probe outcome into the state machine and reports
// whether ring membership changed (an Alive/Suspect peer went Down, or a
// Down peer recovered).
func (p *peerHealth) observe(ok bool, now time.Time, downAfter int) (membershipChanged bool) {
	p.probes++
	if ok {
		recovered := p.state == Down
		p.state = Alive
		p.fails = 0
		p.lastSeen = now
		return recovered
	}
	p.fails++
	switch {
	case p.fails >= downAfter:
		wasUp := p.state != Down
		p.state = Down
		return wasUp
	default:
		if p.state == Alive {
			p.state = Suspect
		}
		return false
	}
}

// PeerInfo is the externally visible health row for one peer, surfaced
// through the daemon's /v1/metrics peer table and /v1/healthz summary.
type PeerInfo struct {
	URL      string    `json:"url"`
	State    string    `json:"state"`
	Fails    int       `json:"consecutive_failures,omitempty"`
	Probes   int64     `json:"probes,omitempty"`
	LastSeen time.Time `json:"last_seen,omitempty"`
	InRing   bool      `json:"in_ring"`
}

// Package cluster implements the compile-path routing layer for a fleet
// of rstid peers: a consistent-hash ring over source digests decides
// which peer owns each program's compilation, and a router forwards
// artifact requests to the owner so the cluster pays each program's
// instrumentation cost once, not once per node.
//
// The design follows the paper's deployment argument: RSTI's cost is
// front-loaded in compile-time instrumentation (type analysis, PAC
// modifier assignment, per-flavor rewriting), while enforcement at run
// time is cheap. A cluster therefore wants compilation to behave like a
// content-addressed shared service — any peer can serve any program, but
// exactly one peer performs the instrumentation, and everyone else adopts
// the resulting artifact (see internal/compilecache's version-2 format).
//
// Ownership must be stable under membership churn, which is what the
// consistent-hash ring provides: each peer projects Replicas virtual
// nodes onto a 64-bit hash circle, and a source digest is owned by the
// first virtual node clockwise from it. Adding or removing one peer
// remaps only ~1/N of the key space; every other source keeps its owner
// and therefore its warm artifact.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultReplicas is the virtual-node count per peer. 128 points per
// peer keeps the max/min ownership imbalance within ~2x for fleets up to
// a few dozen peers while the ring stays small enough to rebuild on
// every membership change (a rebuild is a sort of peers*replicas points).
const DefaultReplicas = 128

type ringPoint struct {
	hash   uint64
	member string
}

// Ring is an immutable consistent-hash ring over a set of peer names.
// Mutation is by replacement: the router rebuilds the ring whenever
// health changes membership, so readers never need a lock.
type Ring struct {
	points  []ringPoint
	members []string
}

// NewRing builds a ring with replicas virtual nodes per member
// (DefaultReplicas if replicas <= 0). Duplicate members collapse; order
// is irrelevant — two rings over the same member set assign every key
// identically, which is what lets peers with independently-constructed
// rings agree on owners.
func NewRing(replicas int, members ...string) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(members))
	r := &Ring{}
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		r.members = append(r.members, m)
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{hash: pointHash(m, i), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare with sha256 points) break by name so
		// every ring over the same membership still agrees.
		return r.points[i].member < r.points[j].member
	})
	sort.Strings(r.members)
	return r
}

// pointHash places virtual node i of member m on the circle. The
// position is a sha256 of the member name and replica index, so points
// are uniform regardless of how peer URLs are shaped.
func pointHash(m string, i int) uint64 {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", m, i)))
	return binary.BigEndian.Uint64(sum[:8])
}

// KeyHash maps a source digest onto the circle. Sources are already
// content-addressed by sha256 (the compile cache's key), so the first
// eight bytes are a uniform 64-bit point.
func KeyHash(sum [32]byte) uint64 {
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the member owning the given source digest: the first
// virtual node clockwise from the key's position, wrapping at the top of
// the circle. An empty ring owns nothing and returns "".
func (r *Ring) Owner(sum [32]byte) string {
	if len(r.points) == 0 {
		return ""
	}
	h := KeyHash(sum)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// OwnerOfSource is Owner over the raw source text, hashing it the same
// way the compile cache keys it.
func (r *Ring) OwnerOfSource(src string) string {
	return r.Owner(sha256.Sum256([]byte(src)))
}

// Members returns the ring's member set, sorted.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Size reports the number of members.
func (r *Ring) Size() int { return len(r.members) }

package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Wire constants shared by the router (client side) and the daemon's peer
// endpoints (server side). The peer surface is deliberately tiny: one
// artifact-transfer endpoint and one health probe, both guarded by a
// shared-secret header so a cluster can sit on an internal network
// without exposing compile capacity to tenants.
const (
	// PeerArtifactPath accepts POST {"source": "..."} and returns the
	// encoded compile artifact (application/octet-stream) for that source,
	// compiling locally if needed. It never forwards: the handler serves
	// from the node's own cache/compiler, so request chains terminate at
	// one hop even when peers disagree about ownership mid-churn.
	PeerArtifactPath = "/v1/peer/artifact"
	// PeerHealthPath answers GET with 200 once the daemon is serving.
	PeerHealthPath = "/v1/peer/health"
	// PeerKeyHeader carries the cluster's shared secret.
	PeerKeyHeader = "X-RSTI-Peer-Key"
)

// latencySampleCap bounds the forwarded-fetch latency reservoir; 512
// samples give stable p50/p99 while keeping Stats cheap.
const latencySampleCap = 512

// Config parameterizes a Router.
type Config struct {
	// Self is this node's advertised base URL; it is always a ring member
	// and is never probed or forwarded to.
	Self string
	// Peers are the other nodes' base URLs (Self is filtered out if
	// present, so every node can share one flag value).
	Peers []string
	// Replicas is the virtual-node count per peer; <= 0 means
	// DefaultReplicas.
	Replicas int
	// HeartbeatInterval is the background probe period. Zero disables the
	// background loop — callers (and tests) can still drive health
	// deterministically with ProbeNow.
	HeartbeatInterval time.Duration
	// ProbeTimeout bounds one health probe; <= 0 means 1s.
	ProbeTimeout time.Duration
	// DownAfter is the consecutive-failure threshold; <= 0 means
	// DefaultDownAfter.
	DownAfter int
	// Secret, when non-empty, is sent as PeerKeyHeader on every peer
	// request (the daemon rejects peer requests without it).
	Secret string
	// Client is the HTTP client for peer traffic; nil means a dedicated
	// client with sane timeouts.
	Client *http.Client
	// Logf, when non-nil, receives membership transitions.
	Logf func(format string, args ...any)
}

// Stats is a point-in-time snapshot of the router's counters, surfaced
// in /v1/metrics.
type Stats struct {
	Self     string `json:"self"`
	RingSize int    `json:"ring_size"`
	// SelfOwned counts artifact lookups this node owned (no forward).
	SelfOwned int64 `json:"self_owned"`
	// Forwards counts artifact fetches attempted against an owner peer;
	// ForwardHits of them returned an artifact, ForwardErrors failed and
	// fell back to a local compile.
	Forwards      int64 `json:"forwards"`
	ForwardHits   int64 `json:"forward_hits"`
	ForwardErrors int64 `json:"forward_errors"`
	// DownSkips counts lookups whose owner was known-Down at forward time,
	// served by immediate local fallback without a doomed request.
	DownSkips int64 `json:"down_skips,omitempty"`
	// Forwarded-fetch latency quantiles over a recent-sample reservoir.
	ForwardP50Ms float64 `json:"forward_p50_ms,omitempty"`
	ForwardP99Ms float64 `json:"forward_p99_ms,omitempty"`
	// Peers is the health table (excluding Self).
	Peers []PeerInfo `json:"peers,omitempty"`
}

// Router owns the ring and peer health for one node and implements the
// compile cache's Fetch hook: given a source whose owner is another
// peer, it retrieves the owner's encoded artifact so this node adopts
// the instrumentation instead of redoing it.
type Router struct {
	cfg    Config
	client *http.Client

	mu        sync.Mutex
	ring      *Ring
	peers     map[string]*peerHealth
	stats     Stats
	latencies []time.Duration // reservoir, newest-wins overwrite
	latIdx    int

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New builds a router for Self among Peers. With a positive
// HeartbeatInterval the background probe loop starts immediately; all
// peers start Alive (optimistic membership — a cold cluster must not
// treat unprobed peers as down, or every node would boot into a
// singleton ring).
func New(cfg Config) (*Router, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Config.Self required")
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = DefaultDownAfter
	}
	r := &Router{
		cfg:    cfg,
		client: cfg.Client,
		peers:  make(map[string]*peerHealth),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if r.client == nil {
		r.client = &http.Client{Timeout: 10 * time.Second}
	}
	for _, p := range cfg.Peers {
		if p == "" || p == cfg.Self {
			continue
		}
		if _, dup := r.peers[p]; dup {
			continue
		}
		r.peers[p] = &peerHealth{url: p, state: Alive}
	}
	r.rebuildRingLocked()
	if cfg.HeartbeatInterval > 0 {
		go r.heartbeatLoop()
	} else {
		close(r.done)
	}
	return r, nil
}

// rebuildRingLocked recomputes the ring from current health: Self plus
// every peer not Down. Caller holds r.mu (or has exclusive access during
// construction).
func (r *Router) rebuildRingLocked() {
	members := []string{r.cfg.Self}
	for _, p := range r.peers {
		if p.state != Down {
			members = append(members, p.url)
		}
	}
	r.ring = NewRing(r.cfg.Replicas, members...)
}

// Ring returns the current ring snapshot.
func (r *Router) Ring() *Ring {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring
}

// Owner returns the base URL of the peer owning src under the current
// ring ("" never happens: Self is always a member).
func (r *Router) Owner(src string) string {
	return r.Ring().OwnerOfSource(src)
}

// FetchArtifact implements compilecache.Config.Fetch. Return contract:
// (bytes, nil) is an artifact fetched from the owning peer; (nil, nil)
// means peer fetch does not apply (this node owns the source, or the
// owner is known-down) and the caller proceeds locally without counting
// a peer attempt; (nil, err) is an attempted-and-failed fetch — the
// caller counts it and falls back to a local compile, so an owner crash
// degrades to pre-cluster behaviour instead of an error.
func (r *Router) FetchArtifact(src string) ([]byte, error) {
	owner := r.Owner(src)
	if owner == r.cfg.Self {
		r.mu.Lock()
		r.stats.SelfOwned++
		r.mu.Unlock()
		return nil, nil
	}
	r.mu.Lock()
	ph := r.peers[owner]
	if ph == nil || ph.state == Down {
		// Ring churn can briefly route to a peer health just demoted.
		r.stats.DownSkips++
		r.mu.Unlock()
		return nil, nil
	}
	r.stats.Forwards++
	r.mu.Unlock()

	start := time.Now()
	raw, err := r.fetchFrom(owner, src)
	if err != nil {
		r.mu.Lock()
		r.stats.ForwardErrors++
		r.mu.Unlock()
		// A failed transfer is a failed probe: fold it into health so a
		// crashed owner leaves the ring without waiting for heartbeats.
		r.observe(owner, false)
		return nil, err
	}
	r.observe(owner, true)
	r.mu.Lock()
	r.stats.ForwardHits++
	r.recordLatencyLocked(time.Since(start))
	r.mu.Unlock()
	return raw, nil
}

// fetchFrom POSTs the peer-artifact request to owner and returns the
// artifact bytes. Integrity is the caller's job: the compile cache
// checksum-verifies and fully decodes every fetched artifact before
// serving it, so a corrupt or truncated transfer falls back to a local
// compile.
func (r *Router) fetchFrom(owner, src string) ([]byte, error) {
	body, err := json.Marshal(struct {
		Source string `json:"source"`
	}{Source: src})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, owner+PeerArtifactPath, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if r.cfg.Secret != "" {
		req.Header.Set(PeerKeyHeader, r.cfg.Secret)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("cluster: peer %s: status %d: %s", owner, resp.StatusCode, bytes.TrimSpace(msg))
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("cluster: peer %s: empty artifact", owner)
	}
	return raw, nil
}

// observe folds one probe/transfer outcome into a peer's health and
// rebuilds the ring on membership transitions.
func (r *Router) observe(url string, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ph := r.peers[url]
	if ph == nil {
		return
	}
	prev := ph.state
	if ph.observe(ok, time.Now(), r.cfg.DownAfter) {
		r.rebuildRingLocked()
		if r.cfg.Logf != nil {
			r.cfg.Logf("cluster: peer %s %s -> %s (ring size %d)", url, prev, ph.state, r.ring.Size())
		}
	}
}

// ProbeNow runs one synchronous health round across all peers,
// regardless of whether the background loop is running. Tests and
// startup paths use it to reach a deterministic health state.
func (r *Router) ProbeNow() {
	r.mu.Lock()
	urls := make([]string, 0, len(r.peers))
	for u := range r.peers {
		urls = append(urls, u)
	}
	r.mu.Unlock()
	var wg sync.WaitGroup
	for _, u := range urls {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			r.observe(u, r.probe(u))
		}(u)
	}
	wg.Wait()
}

// probe sends one health request; any transport error or non-200 is a
// failure.
func (r *Router) probe(url string) bool {
	req, err := http.NewRequest(http.MethodGet, url+PeerHealthPath, nil)
	if err != nil {
		return false
	}
	if r.cfg.Secret != "" {
		req.Header.Set(PeerKeyHeader, r.cfg.Secret)
	}
	client := &http.Client{Timeout: r.cfg.ProbeTimeout, Transport: r.client.Transport}
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (r *Router) heartbeatLoop() {
	defer close(r.done)
	t := time.NewTicker(r.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.ProbeNow()
		}
	}
}

// Stop terminates the background heartbeat loop (idempotent, safe when
// no loop was started).
func (r *Router) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}

func (r *Router) recordLatencyLocked(d time.Duration) {
	if len(r.latencies) < latencySampleCap {
		r.latencies = append(r.latencies, d)
	} else {
		r.latencies[r.latIdx%latencySampleCap] = d
	}
	r.latIdx++
}

// Stats snapshots the router's counters, latency quantiles and peer
// health table.
func (r *Router) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.Self = r.cfg.Self
	s.RingSize = r.ring.Size()
	if n := len(r.latencies); n > 0 {
		sorted := make([]time.Duration, n)
		copy(sorted, r.latencies)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		s.ForwardP50Ms = float64(sorted[n/2]) / float64(time.Millisecond)
		p99 := (n*99 + 99) / 100
		if p99 > n {
			p99 = n
		}
		s.ForwardP99Ms = float64(sorted[p99-1]) / float64(time.Millisecond)
	}
	inRing := make(map[string]bool, r.ring.Size())
	for _, m := range r.ring.Members() {
		inRing[m] = true
	}
	for _, ph := range r.peers {
		s.Peers = append(s.Peers, PeerInfo{
			URL:      ph.url,
			State:    ph.state.String(),
			Fails:    ph.fails,
			Probes:   ph.probes,
			LastSeen: ph.lastSeen,
			InRing:   inRing[ph.url],
		})
	}
	sort.Slice(s.Peers, func(i, j int) bool { return s.Peers[i].URL < s.Peers[j].URL })
	return s
}

// Package sti implements the Scope-Type Integrity analysis: the
// compile-time half of the paper. It recovers, for every pointer variable
// and every composite-type pointer field, the programmer's intent —
// basic type, scope (the set of functions that use it, plus the owning
// composite type, §4.4), and permission (const-ness) — and interns each
// distinct (type, scope, permission) triple as an RSTI-type.
//
// The analysis also computes everything the three enforcement mechanisms
// and the evaluation need: STC's cast-compatibility merging (union-find
// over the cast edges the IR exposes as bitcasts), the equivalence-class
// statistics of Table 3 (NT, RT, NV, ECV, ECT), address-taken demotion,
// and the pointer-to-pointer census of §6.2.2.
package sti

// Mechanism selects a defense. None and PARTS are the evaluation
// baselines; the three RSTI mechanisms are the paper's contribution.
type Mechanism uint8

const (
	// None performs no instrumentation (the uninstrumented baseline).
	None Mechanism = iota
	// PARTS models the prior work baseline: PAC modifiers derived from
	// the pointer's basic element type only (PARTS' LLVM ElementType),
	// with no scope, permission, or location information.
	PARTS
	// STWC is RSTI Scope-Type Without Combining: one RSTI-type per
	// (type, scope, permission) triple; casts authenticate and re-sign.
	STWC
	// STC is RSTI Scope-Type with Combining: cast-compatible RSTI-types
	// are merged, so casts need no re-signing.
	STC
	// STL is RSTI Scope-Type with Location: the STWC modifier is further
	// XORed with the pointer's own address (&p), defeating all pointer
	// substitution.
	STL
	// Adaptive realizes the paper's §7 future-work proposal: "choosing
	// the mechanism based on the variables with the same RSTI-type". It
	// behaves like STWC, except that RSTI-types whose equivalence class
	// exceeds AdaptiveECVThreshold members — where replay attacks are
	// most viable (the paper's xalancbmk example with 122 equivalent
	// variables) — additionally bind the location, as STL does.
	Adaptive
)

// AdaptiveECVThreshold is the equivalence-class size above which the
// Adaptive mechanism switches a class from scope-type to scope-type +
// location protection. The paper's discussion contrasts mcf (9 equivalent
// variables, STWC adequate) with xalancbmk (122, STL warranted); the
// threshold sits between typical small and large classes.
const AdaptiveECVThreshold = 16

var mechNames = map[Mechanism]string{
	None: "none", PARTS: "parts", STWC: "rsti-stwc", STC: "rsti-stc", STL: "rsti-stl",
	Adaptive: "rsti-adaptive",
}

func (m Mechanism) String() string {
	if s, ok := mechNames[m]; ok {
		return s
	}
	return "mechanism?"
}

// ParseMechanism converts a name (as printed by String) to a Mechanism.
func ParseMechanism(s string) (Mechanism, bool) {
	for m, n := range mechNames {
		if n == s {
			return m, true
		}
	}
	return None, false
}

// Mechanisms lists every defense in evaluation order.
var Mechanisms = []Mechanism{None, PARTS, STWC, STC, STL}

// RSTIMechanisms lists only the paper's three contributions.
var RSTIMechanisms = []Mechanism{STWC, STC, STL}

// Permission is the paper's read/write intent, recovered from const
// qualifiers anywhere in the declared type (the DW_TAG_const_type walk of
// Figure 4).
type Permission uint8

const (
	RW Permission = iota
	RO
)

func (p Permission) String() string {
	if p == RO {
		return "R"
	}
	return "R/W"
}

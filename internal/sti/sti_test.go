package sti

import (
	"testing"
	"testing/quick"

	"rsti/internal/cminor"
	"rsti/internal/ctypes"
	"rsti/internal/lower"
	"rsti/internal/mir"
)

func analyze(t *testing.T, src string) (*Analysis, *mir.Program) {
	t.Helper()
	f, err := cminor.Frontend(src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	prog, err := lower.Lower(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return Analyze(prog), prog
}

// varRT returns the RSTI-type of the named variable declared in fn.
func varRT(t *testing.T, a *Analysis, fn, name string) *RSTIType {
	t.Helper()
	for i, v := range a.Prog.Vars {
		if v.Name == name && v.DeclFn == fn {
			if a.VarRT[i] < 0 {
				t.Fatalf("%s.%s has no RSTI-type", fn, name)
			}
			return a.Types[a.VarRT[i]]
		}
	}
	t.Fatalf("variable %s.%s not found", fn, name)
	return nil
}

// figure5 is the paper's Figure 5 example program (slightly completed so
// it compiles: foo and bar are given bodies).
const figure5 = `
	typedef struct { void (*send_file)(int x); } ctx;
	void foo(ctx *c) { }
	void bar(ctx *c) { }
	void foo2(void* v_ctx) {
		foo((ctx*) v_ctx);
		bar((ctx*) v_ctx);
	}
	int main(void) {
		ctx* c = (ctx*) malloc(sizeof(ctx));
		const void* v_const = malloc(1);
		foo2((void*) c);
		return 0;
	}
`

func TestFigure5RSTITypes(t *testing.T) {
	a, _ := analyze(t, figure5)

	c := varRT(t, a, "main", "c")
	vctx := varRT(t, a, "foo2", "v_ctx")
	vconst := varRT(t, a, "main", "v_const")

	// Three distinct RSTI-types, as in the Figure 5a table.
	if c.ID == vctx.ID || c.ID == vconst.ID || vctx.ID == vconst.ID {
		t.Errorf("expected 3 distinct RSTI-types, got c=%v v_ctx=%v v_const=%v", c, vctx, vconst)
	}
	// M2 and M3 share the basic type void* but differ in scope and
	// permission — the paper's motivating observation.
	if vctx.Type.Key() != "void*" || vconst.Type.Key() != "void*" {
		t.Errorf("basic types: v_ctx=%s v_const=%s, want void*", vctx.Type, vconst.Type)
	}
	if vconst.Perm != RO {
		t.Errorf("v_const permission = %s, want R", vconst.Perm)
	}
	if vctx.Perm != RW {
		t.Errorf("v_ctx permission = %s, want R/W", vctx.Perm)
	}
	// Scope of v_ctx is foo2 only.
	if len(vctx.Scope) != 1 || vctx.Scope[0] != "foo2" {
		t.Errorf("v_ctx scope = %v, want [foo2]", vctx.Scope)
	}
	// Modifiers are pairwise distinct under STWC.
	m1 := a.Modifier(c.ID, STWC)
	m2 := a.Modifier(vctx.ID, STWC)
	m3 := a.Modifier(vconst.ID, STWC)
	if m1 == m2 || m1 == m3 || m2 == m3 {
		t.Error("STWC modifiers collide across distinct RSTI-types")
	}
}

func TestFigure5STCMergesAcrossCast(t *testing.T) {
	a, _ := analyze(t, figure5)
	c := varRT(t, a, "main", "c")
	vctx := varRT(t, a, "foo2", "v_ctx")
	vconst := varRT(t, a, "main", "v_const")

	// The (void*)c cast flows into foo2's v_ctx: STC merges them.
	if a.ClassOf(c.ID, STC) != a.ClassOf(vctx.ID, STC) {
		t.Error("STC did not merge ctx* with void* across the cast")
	}
	// v_const is never cast into that flow: it stays separate (the
	// Figure 5b table has two classes: M1 = {ctx*, void*}, M2 = const).
	if a.ClassOf(vconst.ID, STC) == a.ClassOf(c.ID, STC) {
		t.Error("STC merged the const void* with the cast chain")
	}
	// STWC does not merge.
	if a.ClassOf(c.ID, STWC) == a.ClassOf(vctx.ID, STWC) {
		t.Error("STWC merged across a cast")
	}
	// STC modifiers agree within the class and differ across classes.
	if a.Modifier(c.ID, STC) != a.Modifier(vctx.ID, STC) {
		t.Error("merged class modifiers disagree")
	}
	if a.Modifier(c.ID, STC) == a.Modifier(vconst.ID, STC) {
		t.Error("distinct class modifiers collide")
	}
}

// figure8 is the paper's Figure 8 merging example.
const figure8 = `
	void foo(void) {
		void *p1, *p2;
		int* p3;
		p1 = (void*) p3;
	}
	int main(void) { foo(); return 0; }
`

func TestFigure8Merging(t *testing.T) {
	a, _ := analyze(t, figure8)
	p1 := varRT(t, a, "foo", "p1")
	p2 := varRT(t, a, "foo", "p2")
	p3 := varRT(t, a, "foo", "p3")

	// p1 and p2 share one RSTI-type under both STWC and STC (same type,
	// scope, permission).
	if p1.ID != p2.ID {
		t.Errorf("p1 and p2 have distinct RSTI-types (%v vs %v), want shared", p1, p2)
	}
	// STWC does not merge p1 with p3.
	if a.ClassOf(p1.ID, STWC) == a.ClassOf(p3.ID, STWC) {
		t.Error("STWC merged int* with void*")
	}
	// STC merges p3 into p1/p2's class via the cast.
	if a.ClassOf(p1.ID, STC) != a.ClassOf(p3.ID, STC) {
		t.Error("STC did not merge p3 with p1 across the cast")
	}
}

func TestFigure8EquivalenceCounts(t *testing.T) {
	a, _ := analyze(t, figure8)
	st := a.Equivalence()
	if st.NT != 2 { // void*, int*
		t.Errorf("NT = %d, want 2", st.NT)
	}
	if st.NV != 3 {
		t.Errorf("NV = %d, want 3", st.NV)
	}
	if st.RTSTWC != 2 { // {p1,p2} and {p3}
		t.Errorf("RT(STWC) = %d, want 2", st.RTSTWC)
	}
	if st.RTSTC != 1 {
		t.Errorf("RT(STC) = %d, want 1", st.RTSTC)
	}
	if st.LargestECVSTWC != 2 {
		t.Errorf("largest ECV STWC = %d, want 2", st.LargestECVSTWC)
	}
	if st.LargestECVSTC != 3 {
		t.Errorf("largest ECV STC = %d, want 3", st.LargestECVSTC)
	}
	if st.LargestECTSTWC != 1 {
		t.Errorf("largest ECT STWC = %d, want 1", st.LargestECTSTWC)
	}
	if st.LargestECTSTC != 2 {
		t.Errorf("largest ECT STC = %d, want 2", st.LargestECTSTC)
	}
}

func TestScopeWidensAcrossFunctions(t *testing.T) {
	a, _ := analyze(t, `
		char *shared;
		void reader(void) { char *l = shared; }
		void writer(void) { shared = "x"; }
		int main(void) { writer(); reader(); return 0; }
	`)
	rt := varRT(t, a, "", "shared")
	want := []string{mir.InitFuncName, "reader", "writer"}
	_ = want
	// The global's scope includes both using functions.
	found := map[string]bool{}
	for _, s := range rt.Scope {
		found[s] = true
	}
	if !found["reader"] || !found["writer"] {
		t.Errorf("global scope = %v, want to include reader and writer", rt.Scope)
	}
}

func TestFieldSensitiveScope(t *testing.T) {
	// The paper's Figure 6: ptr->fp has scope {main, struct node}.
	a, _ := analyze(t, `
		int hello_func(void) { return 1; }
		struct node { int key; int (*fp)(void); struct node *next; };
		int main(void) {
			struct node* ptr = (struct node*) malloc(sizeof(struct node));
			ptr->fp = hello_func;
			return ptr->fp();
		}
	`)
	st, _ := a.Prog.Types.Struct("node")
	var fpIdx int = -1
	for i, f := range st.Fields {
		if f.Name == "fp" {
			fpIdx = i
		}
	}
	rtID, ok := a.FieldRT[FieldKey{"node", fpIdx}]
	if !ok {
		t.Fatal("field node.fp has no RSTI-type")
	}
	rt := a.Types[rtID]
	scope := map[string]bool{}
	for _, s := range rt.Scope {
		scope[s] = true
	}
	if !scope["main"] || !scope["struct node"] {
		t.Errorf("fp scope = %v, want {main, struct node}", rt.Scope)
	}
}

func TestAddressTakenDemotion(t *testing.T) {
	a, _ := analyze(t, `
		void reset(int **pp) { *pp = NULL; }
		int main(void) {
			int x = 0;
			int *p = &x;
			int *q = &x;
			reset(&p);
			return 0;
		}
	`)
	p := varRT(t, a, "main", "p")
	q := varRT(t, a, "main", "q")
	if !p.Escaped {
		t.Error("address-taken p not demoted to an escaped RSTI-type")
	}
	if q.Escaped {
		t.Error("q demoted although its address never escapes")
	}
	// The escaped type's modifier equals the anonymous-storage modifier
	// for int*, keeping *pp stores and direct p loads consistent.
	esc := a.EscapedType(ctypes.PointerTo(ctypes.IntType))
	if a.Modifier(p.ID, STWC) != a.Modifier(esc.ID, STWC) {
		t.Error("escaped variable modifier differs from anonymous-storage modifier")
	}
}

func TestPARTSModifierIgnoresScopeAndConst(t *testing.T) {
	a, _ := analyze(t, `
		void f(void) { const char *a = "x"; }
		void g(void) { char *b = "y"; }
		int main(void) { f(); g(); return 0; }
	`)
	ra := varRT(t, a, "f", "a")
	rb := varRT(t, a, "g", "b")
	if a.Modifier(ra.ID, PARTS) != a.Modifier(rb.ID, PARTS) {
		t.Error("PARTS distinguishes const char* from char* — it should not")
	}
	if a.Modifier(ra.ID, STWC) == a.Modifier(rb.ID, STWC) {
		t.Error("RSTI does not distinguish const char* in f from char* in g — it should")
	}
}

func TestPointerToPointerCensus(t *testing.T) {
	a, _ := analyze(t, `
		struct node { int key; };
		void foo1(struct node** pp1) { }
		void foo2(void** pp2) { }
		int main(void) {
			struct node* p = (struct node*) malloc(sizeof(struct node));
			foo1(&p);
			foo2((void**) &p);
			return 0;
		}
	`)
	if len(a.PPSpecial) != 1 {
		t.Fatalf("special pp sites = %d, want 1 (only the foo2 call)", len(a.PPSpecial))
	}
	site := a.PPSpecial[0]
	if site.Fn != "main" {
		t.Errorf("site in %s, want main", site.Fn)
	}
	if site.FromTy.Key() != "struct node**" {
		t.Errorf("FE double-pointer type = %s", site.FromTy)
	}
	if site.CE == 0 {
		t.Error("CE tag is 0 (reserved for untagged)")
	}
	if a.PPTotalSites < 2 {
		t.Errorf("total pp sites = %d, want >= 2", a.PPTotalSites)
	}
	// The FE modifier equals the escaped modifier of struct node*.
	nodePtr := site.FromTy.Elem
	if a.FEModifierFor(nodePtr, STWC) != a.Modifier(a.EscapedType(nodePtr).ID, STWC) {
		t.Error("FE modifier mismatch")
	}
}

func TestCEAssignmentStable(t *testing.T) {
	src := `
		struct a { int x; };
		struct b { int y; };
		void sink(void** pp) { }
		int main(void) {
			struct a* pa = (struct a*) malloc(4);
			struct b* pb = (struct b*) malloc(4);
			sink((void**)&pa);
			sink((void**)&pb);
			sink((void**)&pa);
			return 0;
		}
	`
	a1, _ := analyze(t, src)
	a2, _ := analyze(t, src)
	if len(a1.PPSpecial) != 3 {
		t.Fatalf("special sites = %d, want 3", len(a1.PPSpecial))
	}
	// Same FE type -> same CE; distinct FE types -> distinct CEs;
	// deterministic across runs.
	if a1.PPSpecial[0].CE != a1.PPSpecial[2].CE {
		t.Error("same FE type assigned different CEs")
	}
	if a1.PPSpecial[0].CE == a1.PPSpecial[1].CE {
		t.Error("different FE types share a CE")
	}
	for i := range a1.PPSpecial {
		if a1.PPSpecial[i].CE != a2.PPSpecial[i].CE {
			t.Error("CE assignment not deterministic")
		}
	}
}

func TestSTCMergeIsTransitiveProperty(t *testing.T) {
	// Chains of casts merge transitively: a -> b -> c puts all three in
	// one class.
	a, _ := analyze(t, `
		struct s1 { int a; };
		struct s2 { int b; };
		int main(void) {
			struct s1 *x = (struct s1*) malloc(4);
			void *y = (void*) x;
			struct s2 *z = (struct s2*) y;
			return 0;
		}
	`)
	x := varRT(t, a, "main", "x")
	y := varRT(t, a, "main", "y")
	z := varRT(t, a, "main", "z")
	cx, cy, cz := a.ClassOf(x.ID, STC), a.ClassOf(y.ID, STC), a.ClassOf(z.ID, STC)
	if cx != cy || cy != cz {
		t.Errorf("cast chain not fully merged: %d %d %d", cx, cy, cz)
	}
}

func TestModifierDeterminism(t *testing.T) {
	f := func(s string) bool {
		return hash64(s) == hash64(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if hash64("a") == hash64("b") {
		t.Error("hash64 collides on trivial probe")
	}
}

func TestEquivalenceEmptyProgram(t *testing.T) {
	a, _ := analyze(t, "int main(void) { return 0; }")
	st := a.Equivalence()
	if st.NV != 0 || st.NT != 0 || st.RTSTWC != 0 {
		t.Errorf("empty program stats: %+v", st)
	}
}

func TestMechanismParsing(t *testing.T) {
	for _, m := range Mechanisms {
		got, ok := ParseMechanism(m.String())
		if !ok || got != m {
			t.Errorf("ParseMechanism(%q) = %v, %v", m.String(), got, ok)
		}
	}
	if _, ok := ParseMechanism("bogus"); ok {
		t.Error("ParseMechanism accepted bogus")
	}
}

package sti

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"rsti/internal/ctypes"
	"rsti/internal/mir"
)

// RSTIType is one interned (type, scope, permission) triple — the unit of
// enforcement (§4.5). Escaped types are the demoted form used for
// variables whose address is taken and for anonymous (heap / element /
// through-pointer) storage, where variable identity is not statically
// known; they carry type and permission but no scope.
type RSTIType struct {
	ID      int
	Type    *ctypes.Type
	Scope   []string // sorted scope-set members; nil for escaped types
	Perm    Permission
	Escaped bool

	// Members: the variables and fields protected by this RSTI-type.
	Vars   []int
	Fields []FieldKey

	// key caches the canonical identity string (set at intern time);
	// modifier derivation hashes it on every instrumented site, so
	// rebuilding it with Sprintf each call was a compile-path hot spot.
	key string
}

// Key is the canonical identity string the type was interned under.
func (rt *RSTIType) Key() string {
	if rt.key != "" {
		return rt.key
	}
	if rt.Escaped {
		return fmt.Sprintf("esc|%s|%s", rt.Type.Key(), rt.Perm)
	}
	return fmt.Sprintf("rsti|%s|{%s}|%s", rt.Type.Key(), strings.Join(rt.Scope, ","), rt.Perm)
}

// String renders the triple like the paper's Figure 5 tables.
func (rt *RSTIType) String() string {
	scope := "<escaped>"
	if !rt.Escaped {
		scope = strings.Join(rt.Scope, ",")
	}
	return fmt.Sprintf("M%d{type: %s, scope: %s, perm: %s}", rt.ID, rt.Type, scope, rt.Perm)
}

// PPSite is one pointer-to-pointer call-argument site where the original
// type would be lost (§4.7.7): a T** cast to a universal U** and passed to
// a function.
type PPSite struct {
	Fn     string
	FromTy *ctypes.Type // the original double-pointer type (T**)
	ToTy   *ctypes.Type // the universal type it was cast to (void**/char**)
	CE     uint16       // assigned Compact Equivalent tag
}

// Analysis is the STI result for one program.
type Analysis struct {
	Prog *mir.Program

	Types   []*RSTIType
	VarRT   []int // VarInfo index -> RSTIType ID (-1 for non-pointer vars)
	FieldRT map[FieldKey]int

	AddrTakenVars   []bool
	AddrTakenFields map[FieldKey]bool

	VarScopes   [][]string
	FieldScopes map[FieldKey][]string

	CastEdges []CastEdge
	// FlowEdges are the cast-free pointer flows (assignments, argument
	// passing) that widen scopes: connected units share one RSTI-type.
	FlowEdges []CastEdge
	Origins   map[string]*FuncOrigins

	// Flow-group state (scope widening).
	fieldUnit  map[FieldKey]int
	unitField  []FieldKey
	flowParent []int

	// Pointer-to-pointer census (§6.2.2).
	PPTotalSites int
	PPSpecial    []PPSite
	ceByFE       map[string]uint16 // FE inner-type key -> CE
	ceInner      map[uint16]uint16 // CE -> CE of the next indirection level
	FEModifier   map[uint16]uint64 // CE -> escaped modifier of the FE type

	byKey   map[string]*RSTIType
	escaped map[string]*RSTIType
	parent  []int // STC union-find over Types

	// mu guards the lazily mutated state (Types/byKey/escaped growth via
	// EscapedType interning, union-find path compression, the memo maps
	// below) so one Analysis can serve concurrent per-function and
	// per-mechanism instrumentation. Analyze itself runs single-threaded
	// and uses the unlocked internals.
	mu sync.Mutex

	// escByTy short-circuits escapedType per program type pointer,
	// skipping the strip/rebuild/Sprintf probe on the hit path; modCache
	// memoizes modifier derivation (a key-string hash) per (type,
	// mechanism). Both are deterministic functions of their keys, so
	// memoization cannot change any reported number.
	escByTy  map[*ctypes.Type]*RSTIType
	modCache map[modCacheKey]uint64
}

type modCacheKey struct {
	rtID int
	mech Mechanism
}

// Analyze runs the full STI analysis over a lowered program.
func Analyze(prog *mir.Program) *Analysis {
	a := &Analysis{
		Prog:            prog,
		VarRT:           make([]int, len(prog.Vars)),
		FieldRT:         make(map[FieldKey]int),
		AddrTakenVars:   make([]bool, len(prog.Vars)),
		AddrTakenFields: make(map[FieldKey]bool),
		FieldScopes:     make(map[FieldKey][]string),
		Origins:         make(map[string]*FuncOrigins),
		ceByFE:          make(map[string]uint16),
		ceInner:         make(map[uint16]uint16),
		FEModifier:      make(map[uint16]uint64),
		byKey:           make(map[string]*RSTIType),
		escaped:         make(map[string]*RSTIType),
	}
	for i := range a.VarRT {
		a.VarRT[i] = -1
	}

	for _, fn := range prog.Funcs {
		if fn.Extern {
			continue
		}
		a.Origins[fn.Name] = TrackOrigins(prog, fn)
	}

	a.collectAddressTaken()
	scopes := a.collectScopes()
	a.collectCastEdgesAndPP()
	a.buildFlowGroups()
	a.internTypes(scopes)
	a.mergeForSTC()
	return a
}

// ---------- Scope widening over uncast flows ----------
//
// The paper's scope of an escaping variable covers every function the
// pointer travels to without a cast: Figure 5a's M1 = {main, foo, bar,
// foo2} spans c and the ctx* parameters it flows into. We realize this by
// grouping protection units (variables and fields) connected by
// same-type, cast-free dataflow — plain assignments, argument passing —
// and interning one RSTI-type per group whose scope is the union of the
// members' scopes. Cast-connected flows stay separate (that is exactly
// what distinguishes STWC from STC).

// unitID flattens variables and fields into one index space for the
// flow-group union-find: variables use their VarInfo index, fields are
// appended after them.
func (a *Analysis) unitOfVar(v int) int { return v }

func (a *Analysis) unitOfField(fk FieldKey) (int, bool) {
	id, ok := a.fieldUnit[fk]
	return id, ok
}

func (a *Analysis) buildFlowGroups() {
	// Assign field unit IDs.
	a.fieldUnit = make(map[FieldKey]int)
	a.unitField = nil
	next := len(a.Prog.Vars)
	for fk := range a.FieldScopes {
		a.fieldUnit[fk] = next
		a.unitField = append(a.unitField, fk)
		next++
	}
	a.flowParent = make([]int, next)
	for i := range a.flowParent {
		a.flowParent[i] = i
	}
	for _, e := range a.FlowEdges {
		su, okS := a.unitOfOrigin(e.SrcKind, e.SrcVar, e.SrcFld)
		du, okD := a.unitOfOrigin(e.DstKind, e.DstVar, e.DstFld)
		if okS && okD {
			a.flowUnion(su, du)
		}
	}
}

func (a *Analysis) unitOfOrigin(kind OriginKind, v int, fk FieldKey) (int, bool) {
	switch kind {
	case OriginVar:
		return a.unitOfVar(v), true
	case OriginField:
		return a.unitOfField(fk)
	}
	return 0, false
}

func (a *Analysis) flowFind(x int) int {
	for a.flowParent[x] != x {
		a.flowParent[x] = a.flowParent[a.flowParent[x]]
		x = a.flowParent[x]
	}
	return x
}

func (a *Analysis) flowUnion(x, y int) {
	rx, ry := a.flowFind(x), a.flowFind(y)
	if rx != ry {
		if rx > ry {
			rx, ry = ry, rx
		}
		a.flowParent[ry] = rx
	}
}

// typeHasConst walks the type chain for a const qualifier, the analogue of
// the paper's DIDerivedType / DW_TAG_const_type traversal.
func typeHasConst(t *ctypes.Type) bool {
	for t != nil {
		if t.Const {
			return true
		}
		if t.Kind == ctypes.Pointer || t.Kind == ctypes.Array {
			t = t.Elem
			continue
		}
		return false
	}
	return false
}

// PermOf computes the paper's permission for a declared type.
func PermOf(t *ctypes.Type) Permission {
	if typeHasConst(t) {
		return RO
	}
	return RW
}

// collectAddressTaken marks pointer-typed variables and fields whose slot
// address escapes into data flow (stored, passed, cast, or computed with),
// which demotes them to escaped RSTI-types so that direct and indirect
// accesses agree on the modifier.
func (a *Analysis) collectAddressTaken() {
	for _, fn := range a.Prog.Funcs {
		if fn.Extern {
			continue
		}
		fo := a.Origins[fn.Name]
		// fieldAddrOf maps a register produced by FieldAddr to its field.
		fieldAddrOf := make(map[mir.Reg]FieldKey)
		markVar := func(r mir.Reg) {
			if r == mir.NoReg || r >= len(fo.Regs) {
				return
			}
			if o := fo.Regs[r]; o.Kind == OriginSlotAddr {
				v := a.Prog.Vars[o.Var]
				if v.Type.IsPointer() {
					a.AddrTakenVars[o.Var] = true
				}
			}
			if fk, ok := fieldAddrOf[r]; ok {
				a.AddrTakenFields[fk] = true
			}
		}
		for _, blk := range fn.Blocks {
			for i := range blk.Instrs {
				in := &blk.Instrs[i]
				switch in.Op {
				case mir.FieldAddr:
					if in.Slot.Kind == mir.SlotField {
						st := in.Slot.Struct
						if in.Slot.Field >= 0 && in.Slot.Field < len(st.Fields) && st.Fields[in.Slot.Field].Type.IsPointer() {
							fieldAddrOf[in.Dst] = FieldKey{st.Name, in.Slot.Field}
						}
					}
				case mir.Load:
					// Address position: normal access, but only when the
					// slot matches; a load *of* a slot address through
					// another pointer cannot occur for OriginSlotAddr.
					delete(fieldAddrOf, in.A)
				case mir.Store:
					// Using the address as the store target is normal;
					// storing it as a value is escape.
					markVar(in.B)
					delete(fieldAddrOf, in.A)
				case mir.CastOp:
					markVar(in.A)
				case mir.BinInstr, mir.IndexAddr:
					markVar(in.A)
					markVar(in.B)
				case mir.CmpInstr:
					markVar(in.A)
					markVar(in.B)
				case mir.CallOp:
					for _, r := range in.Args {
						markVar(r)
					}
				case mir.RetOp:
					markVar(in.A)
				}
			}
		}
	}
}

// collectScopes builds the scope sets: for variables, the declaring
// function plus every function that loads or stores the slot; for fields,
// every accessing function plus the owning composite type (§4.7.4).
func (a *Analysis) collectScopes() [][]string {
	varScope := make([]map[string]bool, len(a.Prog.Vars))
	fieldScope := make(map[FieldKey]map[string]bool)
	for i, v := range a.Prog.Vars {
		varScope[i] = make(map[string]bool)
		if v.DeclFn != "" {
			varScope[i][v.DeclFn] = true
		}
	}
	for _, fn := range a.Prog.Funcs {
		if fn.Extern || fn.Name == mir.InitFuncName {
			continue
		}
		for _, blk := range fn.Blocks {
			for i := range blk.Instrs {
				in := &blk.Instrs[i]
				if in.Op != mir.Load && in.Op != mir.Store && in.Op != mir.Alloca &&
					in.Op != mir.GlobalAddr && in.Op != mir.FieldAddr {
					continue
				}
				switch in.Slot.Kind {
				case mir.SlotVar:
					varScope[in.Slot.Var][fn.Name] = true
				case mir.SlotField:
					fk := FieldKey{in.Slot.Struct.Name, in.Slot.Field}
					if fieldScope[fk] == nil {
						fieldScope[fk] = make(map[string]bool)
					}
					fieldScope[fk][fn.Name] = true
				}
			}
		}
	}
	a.VarScopes = make([][]string, len(a.Prog.Vars))
	for i, s := range varScope {
		a.VarScopes[i] = sortedKeys(s)
	}
	for fk, s := range fieldScope {
		s["struct "+fk.Struct] = true // the composite type is part of the scope
		a.FieldScopes[fk] = sortedKeys(s)
	}
	return a.VarScopes
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// intern returns the RSTIType for the triple, creating it if new.
func (a *Analysis) intern(ty *ctypes.Type, scope []string, perm Permission, escaped bool) *RSTIType {
	rt := &RSTIType{Type: ty, Scope: scope, Perm: perm, Escaped: escaped}
	k := rt.Key()
	if got, ok := a.byKey[k]; ok {
		return got
	}
	rt.key = k
	rt.ID = len(a.Types)
	a.Types = append(a.Types, rt)
	a.byKey[k] = rt
	if escaped {
		a.escaped[k] = rt
	}
	return rt
}

// EscapedType interns (or returns) the escaped RSTI-type for a pointer
// type: what anonymous storage of that type is protected with. Safe for
// concurrent use after Analyze.
func (a *Analysis) EscapedType(ty *ctypes.Type) *RSTIType {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.escapedType(ty)
}

func (a *Analysis) escapedType(ty *ctypes.Type) *RSTIType {
	if rt, ok := a.escByTy[ty]; ok {
		return rt
	}
	rt := a.intern(stripConstDeep(ty), nil, PermOf(ty), true)
	if a.escByTy == nil {
		a.escByTy = make(map[*ctypes.Type]*RSTIType)
	}
	a.escByTy[ty] = rt
	return rt
}

func (a *Analysis) internTypes(scopes [][]string) {
	// Gather the pointer-typed protection units into their flow groups.
	type member struct {
		isField bool
		varID   int
		fk      FieldKey
		ty      *ctypes.Type
	}
	groups := make(map[int][]member)
	var roots []int
	addMember := func(unit int, m member) {
		root := a.flowFind(unit)
		if _, seen := groups[root]; !seen {
			roots = append(roots, root)
		}
		groups[root] = append(groups[root], m)
	}
	for i, v := range a.Prog.Vars {
		if v.Type.IsPointer() {
			addMember(a.unitOfVar(i), member{varID: i, ty: v.Type})
		}
	}
	for _, fk := range a.unitField {
		st, ok := a.Prog.Types.Struct(fk.Struct)
		if !ok || fk.Field < 0 || fk.Field >= len(st.Fields) {
			continue
		}
		ft := st.Fields[fk.Field].Type
		if !ft.IsPointer() {
			continue
		}
		unit, _ := a.unitOfField(fk)
		addMember(unit, member{isField: true, fk: fk, ty: ft})
	}
	sort.Ints(roots)

	for _, root := range roots {
		members := groups[root]
		// Union of member scopes; group-wide permission and escape.
		scopeSet := make(map[string]bool)
		escaped := false
		perm := RW
		ty := members[0].ty
		for _, m := range members {
			if m.isField {
				for _, s := range a.FieldScopes[m.fk] {
					scopeSet[s] = true
				}
				if a.AddrTakenFields[m.fk] {
					escaped = true
				}
			} else {
				for _, s := range scopes[m.varID] {
					scopeSet[s] = true
				}
				if a.AddrTakenVars[m.varID] {
					escaped = true
				}
			}
			if PermOf(m.ty) == RO {
				perm = RO
			}
		}
		var rt *RSTIType
		if escaped {
			rt = a.EscapedType(ty)
		} else {
			rt = a.intern(stripConstDeep(ty), sortedKeys(scopeSet), perm, false)
		}
		for _, m := range members {
			if m.isField {
				rt.Fields = append(rt.Fields, m.fk)
				a.FieldRT[m.fk] = rt.ID
			} else {
				rt.Vars = append(rt.Vars, m.varID)
				a.VarRT[m.varID] = rt.ID
			}
		}
	}
	// Escaped types for anonymous pointer storage, so their IDs exist
	// before merging.
	for _, fn := range a.Prog.Funcs {
		if fn.Extern {
			continue
		}
		for _, blk := range fn.Blocks {
			for i := range blk.Instrs {
				in := &blk.Instrs[i]
				if (in.Op == mir.Load || in.Op == mir.Store) && in.Ty != nil && in.Ty.IsPointer() &&
					(in.Slot.Kind == mir.SlotNone || in.Slot.Kind == mir.SlotElem) {
					a.EscapedType(in.Ty)
				}
			}
		}
	}
}

// rtOfOrigin maps a value origin to the RSTI-type protecting it.
func (a *Analysis) rtOfOrigin(o Origin) (*RSTIType, bool) {
	switch o.Kind {
	case OriginVar:
		if id := a.VarRT[o.Var]; id >= 0 {
			return a.Types[id], true
		}
	case OriginField:
		if id, ok := a.FieldRT[o.Field]; ok {
			return a.Types[id], true
		}
	case OriginAnon:
		if o.Ty != nil && o.Ty.IsPointer() {
			ty := o.Ty
			if o.Casted && o.CastFrom != nil {
				ty = o.CastFrom
			}
			return a.EscapedType(ty), true
		}
	}
	return nil, false
}

// collectCastEdgesAndPP walks every function recording (a) variable-level
// cast edges for STC merging and (b) the pointer-to-pointer census.
func (a *Analysis) collectCastEdgesAndPP() {
	nextCE := uint16(1)
	for _, fn := range a.Prog.Funcs {
		if fn.Extern {
			continue
		}
		fo := a.Origins[fn.Name]
		for _, blk := range fn.Blocks {
			for i := range blk.Instrs {
				in := &blk.Instrs[i]
				if (in.Op == mir.Load || in.Op == mir.Store) && in.Ty != nil && in.Ty.PointerDepth() >= 2 {
					a.PPTotalSites++
				}
				switch in.Op {
				case mir.Store:
					if in.Ty == nil || !in.Ty.IsPointer() || in.B == mir.NoReg || in.B >= len(fo.Regs) {
						continue
					}
					src := fo.Regs[in.B]
					dst := originOfSlot(in.Slot, in.Ty)
					if !src.Casted {
						// A cast-free pointer assignment widens the scope:
						// source and destination share one RSTI-type.
						if (src.Kind == OriginVar || src.Kind == OriginField) &&
							src.Ty != nil && src.Ty.Unqualified().Equal(in.Ty.Unqualified()) {
							a.addFlowEdge(src, dst, src.Ty, in.Ty)
						}
						continue
					}
					// A casted universal multi-pointer escaping through a
					// store also needs a CE so later dereferences recover
					// the original type (the "stored in another struct"
					// case of §4.7.7).
					if src.CastFrom != nil && src.CastFrom.PointerDepth() >= 2 &&
						IsUniversalMultiPointer(src.Ty) &&
						!src.CastFrom.Elem.Unqualified().Equal(src.Ty.Elem.Unqualified()) {
						if ce, ok := a.assignCEChain(src.CastFrom.Elem, &nextCE); ok {
							a.PPSpecial = append(a.PPSpecial, PPSite{
								Fn: fn.Name, FromTy: src.CastFrom, ToTy: src.Ty, CE: ce,
							})
						}
					}
					a.addCastEdge(src, dst, in.FromTy, in.Ty)
				case mir.CallOp:
					callee, ok := a.Prog.ByName[in.Callee]
					indirect := in.Callee == ""
					for ai, r := range in.Args {
						if r >= len(fo.Regs) {
							continue
						}
						src := fo.Regs[r]
						if src.Ty != nil && src.Ty.PointerDepth() >= 2 {
							a.PPTotalSites++
						}
						if !src.Casted || src.CastFrom == nil {
							// Cast-free argument passing widens the scope
							// into the callee (Figure 5a's M1 spanning
							// main..foo2).
							if ok && !indirect && ai < len(callee.ParamVar) && callee.ParamVar[ai] >= 0 &&
								(src.Kind == OriginVar || src.Kind == OriginField) &&
								src.Ty != nil && src.Ty.IsPointer() {
								pv := callee.ParamVar[ai]
								pt := a.Prog.Vars[pv].Type
								if pt.IsPointer() && src.Ty.Unqualified().Equal(pt.Unqualified()) {
									dst := Origin{Kind: OriginVar, Var: pv, Ty: pt}
									a.addFlowEdge(src, dst, src.Ty, pt)
								}
							}
							continue
						}
						// Census + CE assignment: a multi-level pointer
						// cast to a universal multi-pointer and passed
						// onward. The FE chain is registered down to the
						// last pointer level, so pp_auth can re-tag each
						// authenticated level with the next CE ("any
						// level of indirection", §4.7.7).
						if src.CastFrom.PointerDepth() >= 2 && IsUniversalMultiPointer(src.Ty) &&
							!src.CastFrom.Elem.Unqualified().Equal(src.Ty.Elem.Unqualified()) {
							ce, ok := a.assignCEChain(src.CastFrom.Elem, &nextCE)
							if !ok {
								continue
							}
							a.PPSpecial = append(a.PPSpecial, PPSite{
								Fn: fn.Name, FromTy: src.CastFrom, ToTy: src.Ty, CE: ce,
							})
						}
						// Cast edge into the callee parameter.
						if ok && !indirect && ai < len(callee.ParamVar) && callee.ParamVar[ai] >= 0 {
							dst := Origin{Kind: OriginVar, Var: callee.ParamVar[ai], Ty: src.Ty}
							a.addCastEdge(src, dst, src.CastFrom, src.Ty)
						}
					}
				}
			}
		}
	}
}

func originOfSlot(slot mir.Slot, ty *ctypes.Type) Origin {
	switch slot.Kind {
	case mir.SlotVar:
		return Origin{Kind: OriginVar, Var: slot.Var, Ty: ty}
	case mir.SlotField:
		return Origin{Kind: OriginField, Field: FieldKey{slot.Struct.Name, slot.Field}, Ty: ty}
	default:
		return Origin{Kind: OriginAnon, Ty: ty}
	}
}

// assignCEChain interns Compact Equivalents for fe and, transitively, for
// each deeper pointer level, linking each CE to its inner level's CE.
// ok is false when the 8-bit CE space is exhausted (the census shows this
// never happens in practice).
func (a *Analysis) assignCEChain(fe *ctypes.Type, nextCE *uint16) (uint16, bool) {
	key := fe.Unqualified().Key()
	if ce, seen := a.ceByFE[key]; seen {
		return ce, true
	}
	if *nextCE > 255 {
		return 0, false
	}
	ce := *nextCE
	*nextCE++
	a.ceByFE[key] = ce
	if fe.PointerDepth() >= 2 {
		if inner, ok := a.assignCEChain(fe.Elem, nextCE); ok {
			a.ceInner[ce] = inner
		}
	}
	return ce, true
}

// CEInner returns the CE of the next indirection level below ce, or 0.
func (a *Analysis) CEInner(ce uint16) uint16 { return a.ceInner[ce] }

// addFlowEdge records a cast-free, same-type pointer flow for scope
// widening.
func (a *Analysis) addFlowEdge(src, dst Origin, from, to *ctypes.Type) {
	a.FlowEdges = append(a.FlowEdges, CastEdge{
		SrcKind: src.Kind, SrcVar: src.Var, SrcFld: src.Field,
		DstKind: dst.Kind, DstVar: dst.Var, DstFld: dst.Field,
		FromTy: from, ToTy: to,
	})
}

func (a *Analysis) addCastEdge(src, dst Origin, from, to *ctypes.Type) {
	e := CastEdge{
		SrcKind: src.Kind, SrcVar: src.Var, SrcFld: src.Field,
		DstKind: dst.Kind, DstVar: dst.Var, DstFld: dst.Field,
		FromTy: from, ToTy: to,
	}
	if src.Casted && src.CastFrom != nil {
		e.FromTy = src.CastFrom
	}
	a.CastEdges = append(a.CastEdges, e)
}

// ---------- STC merging ----------

func (a *Analysis) mergeForSTC() {
	a.parent = make([]int, len(a.Types))
	for i := range a.parent {
		a.parent[i] = i
	}
	for _, e := range a.CastEdges {
		src, okS := a.rtOfOrigin(Origin{Kind: e.SrcKind, Var: e.SrcVar, Field: e.SrcFld, Ty: e.FromTy, Casted: false})
		dst, okD := a.rtOfOrigin(Origin{Kind: e.DstKind, Var: e.DstVar, Field: e.DstFld, Ty: e.ToTy})
		if okS && okD {
			a.union(src.ID, dst.ID)
		}
	}
}

func (a *Analysis) find(x int) int {
	// Escaped RSTI-types may be interned lazily after merging (e.g. by
	// the instrumentation pass); they join as their own singleton class.
	for len(a.parent) <= x {
		a.parent = append(a.parent, len(a.parent))
	}
	for a.parent[x] != x {
		a.parent[x] = a.parent[a.parent[x]]
		x = a.parent[x]
	}
	return x
}

func (a *Analysis) union(x, y int) {
	rx, ry := a.find(x), a.find(y)
	if rx != ry {
		// Deterministic: smaller ID becomes the root.
		if rx > ry {
			rx, ry = ry, rx
		}
		a.parent[ry] = rx
	}
}

// ClassOf returns the enforcement class ID of an RSTI-type under the
// mechanism: the merged root for STC, the type itself otherwise. Safe for
// concurrent use after Analyze.
func (a *Analysis) ClassOf(rtID int, mech Mechanism) int {
	if mech == STC {
		a.mu.Lock()
		defer a.mu.Unlock()
		return a.find(rtID)
	}
	return rtID
}

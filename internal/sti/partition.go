package sti

import "sort"

// Partition is the PAC equivalence-class partition of a program's
// protected pointers under one mechanism: the security-side view of the
// instrumentation. Two slots fall into the same class exactly when a
// validly signed value from one authenticates in the other — equal static
// modifiers and no location binding — so the partition's shape *is* the
// mechanism's replay exposure: class count, largest class, and the number
// of interchangeable signed-pointer pairs.
type Partition struct {
	Mechanism Mechanism
	// Members is the total protected population (named pointer variables
	// plus composite pointer fields — Table 3's NV).
	Members int
	// Sizes holds every class size, descending. Location-bound members
	// (STL always; Adaptive above the ECV threshold) are singletons: the
	// &p XOR makes each slot its own enforcement class.
	Sizes []int
}

// Classes is the number of enforcement classes.
func (p *Partition) Classes() int { return len(p.Sizes) }

// Largest is the biggest class (0 for an empty program).
func (p *Partition) Largest() int {
	if len(p.Sizes) == 0 {
		return 0
	}
	return p.Sizes[0]
}

// ReplayPairs is the replay surface: the number of unordered slot pairs
// an attacker can substitute between, Σ over classes of n·(n−1)/2.
// Location binding leaves zero by construction.
func (p *Partition) ReplayPairs() int64 {
	var pairs int64
	for _, n := range p.Sizes {
		pairs += int64(n) * int64(n-1) / 2
	}
	return pairs
}

// SizesFloat returns the class sizes as float64s (for distribution
// summaries).
func (p *Partition) SizesFloat() []float64 {
	out := make([]float64, len(p.Sizes))
	for i, n := range p.Sizes {
		out[i] = float64(n)
	}
	return out
}

// Partition computes the equivalence-class partition under mech. Classes
// are keyed by the modifier value itself — the extraction the PAC
// hardware enforces — so the partition agrees with Equivalence() by
// construction: under STWC each populated RSTI-type is one class, under
// STC the cast-merged union-find roots are, under PARTS the stripped
// basic types are. Safe for concurrent use after Analyze.
func (a *Analysis) Partition(mech Mechanism) *Partition {
	a.mu.Lock()
	defer a.mu.Unlock()
	p := &Partition{Mechanism: mech}
	classes := make(map[uint64]int)
	singletons := 0
	for _, rt := range a.Types {
		n := len(rt.Vars) + len(rt.Fields)
		if n == 0 {
			// Escaped types interned only for anonymous storage protect no
			// named slot: enforcement classes, but not partition members.
			continue
		}
		p.Members += n
		if a.usesLocation(rt.ID, mech) {
			singletons += n
			continue
		}
		classes[a.modifier(rt.ID, mech)] += n
	}
	p.Sizes = make([]int, 0, len(classes)+singletons)
	for _, n := range classes {
		p.Sizes = append(p.Sizes, n)
	}
	for i := 0; i < singletons; i++ {
		p.Sizes = append(p.Sizes, 1)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(p.Sizes)))
	return p
}

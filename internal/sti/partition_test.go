package sti

import "testing"

// partitionSrc has a deliberate class structure: three same-typed globals
// read from one function (one STWC class of 3), a cast bridge merging two
// struct-pointer classes under STC, and a lone char* local.
const partitionSrc = `
struct A { int x; };
struct B { int y; };
char *g0;
char *g1;
char *g2;
long reader(void) {
	long s = 0;
	g0 = "a"; g1 = "b"; g2 = "c";
	if (g0 != NULL) s += 1;
	if (g1 != NULL) s += 1;
	if (g2 != NULL) s += 1;
	return s;
}
long bridge(void) {
	struct A *pa = NULL;
	struct B *pb = NULL;
	void *v = (void*) pa;
	v = (void*) pb;
	if (v == NULL) return 1;
	return 0;
}
int main(void) {
	char *lone = "z";
	long s = reader() + bridge();
	if (lone != NULL) s += 1;
	return (int) s;
}
`

// TestPartitionAgreesWithEquivalence cross-checks the modifier-keyed
// partition against the independently computed Table 3 statistics: the
// partition and Equivalence must see the same class counts and largest
// classes under STWC and STC, and the same member population.
func TestPartitionAgreesWithEquivalence(t *testing.T) {
	a, _ := analyze(t, partitionSrc)
	eq := a.Equivalence()

	stwc := a.Partition(STWC)
	if stwc.Classes() != eq.RTSTWC {
		t.Errorf("STWC partition classes = %d, Equivalence RTSTWC = %d", stwc.Classes(), eq.RTSTWC)
	}
	if stwc.Largest() != eq.LargestECVSTWC {
		t.Errorf("STWC largest = %d, Equivalence = %d", stwc.Largest(), eq.LargestECVSTWC)
	}
	if stwc.Members != eq.NV {
		t.Errorf("STWC members = %d, NV = %d", stwc.Members, eq.NV)
	}

	stc := a.Partition(STC)
	if stc.Classes() != eq.RTSTC {
		t.Errorf("STC partition classes = %d, Equivalence RTSTC = %d", stc.Classes(), eq.RTSTC)
	}
	if stc.Largest() != eq.LargestECVSTC {
		t.Errorf("STC largest = %d, Equivalence = %d", stc.Largest(), eq.LargestECVSTC)
	}
}

// TestPartitionLattice pins the coarsening order the mechanisms form.
// STC and PARTS coarsen STWC (cast merging, scope stripping), Adaptive
// refines it (big classes split to singletons), STL refines everything
// (every member its own class). Class counts and replay surfaces must
// order accordingly.
func TestPartitionLattice(t *testing.T) {
	a, _ := analyze(t, partitionSrc)
	parts := a.Partition(PARTS)
	stwc := a.Partition(STWC)
	stc := a.Partition(STC)
	adaptive := a.Partition(Adaptive)
	stl := a.Partition(STL)

	// Every mechanism protects the same population.
	for _, p := range []*Partition{parts, stc, adaptive, stl} {
		if p.Members != stwc.Members {
			t.Errorf("%v members = %d, STWC = %d", p.Mechanism, p.Members, stwc.Members)
		}
	}

	// Class counts: STL >= Adaptive >= STWC >= STC, STWC >= PARTS.
	if stl.Classes() != stl.Members {
		t.Errorf("STL classes = %d, want every member a singleton (%d)", stl.Classes(), stl.Members)
	}
	if stl.Largest() > 1 {
		t.Errorf("STL largest class = %d, want 1", stl.Largest())
	}
	if adaptive.Classes() < stwc.Classes() {
		t.Errorf("Adaptive classes (%d) below STWC (%d)", adaptive.Classes(), stwc.Classes())
	}
	if stwc.Classes() < stc.Classes() {
		t.Errorf("STWC classes (%d) below STC (%d): combining cannot split", stwc.Classes(), stc.Classes())
	}
	if stwc.Classes() < parts.Classes() {
		t.Errorf("STWC classes (%d) below PARTS (%d): dropping scope cannot split", stwc.Classes(), parts.Classes())
	}

	// Replay surface: PARTS >= STWC, STC >= STWC >= Adaptive >= STL = 0.
	if stl.ReplayPairs() != 0 {
		t.Errorf("STL replay pairs = %d, want 0", stl.ReplayPairs())
	}
	if parts.ReplayPairs() < stwc.ReplayPairs() {
		t.Errorf("PARTS pairs (%d) below STWC (%d)", parts.ReplayPairs(), stwc.ReplayPairs())
	}
	if stc.ReplayPairs() < stwc.ReplayPairs() {
		t.Errorf("STC pairs (%d) below STWC (%d)", stc.ReplayPairs(), stwc.ReplayPairs())
	}
	if adaptive.ReplayPairs() > stwc.ReplayPairs() {
		t.Errorf("Adaptive pairs (%d) above STWC (%d)", adaptive.ReplayPairs(), stwc.ReplayPairs())
	}

	// The known structure: g0/g1/g2 share one STWC class.
	if stwc.Largest() < 3 {
		t.Errorf("STWC largest = %d, want >= 3 (the g0..g2 pool)", stwc.Largest())
	}
	// The cast bridge merges the two struct classes under STC.
	if stc.Classes() >= stwc.Classes() {
		t.Errorf("cast bridge did not merge: STC %d classes vs STWC %d", stc.Classes(), stwc.Classes())
	}
}

package sti

import (
	"testing"
)

// TestScopeWideningAcrossUncastArguments verifies the Figure 5a behaviour:
// a pointer passed without a cast shares one RSTI-type with the parameter
// it flows into, and the merged scope covers both functions.
func TestScopeWideningAcrossUncastArguments(t *testing.T) {
	a, _ := analyze(t, `
		struct ctx { int v; };
		int foo(struct ctx *c) { return c->v; }
		int bar(struct ctx *c2) { return c2->v; }
		int main(void) {
			struct ctx *c = (struct ctx*) malloc(sizeof(struct ctx));
			c->v = 1;
			foo(c);
			bar(c);
			return 0;
		}
	`)
	c := varRT(t, a, "main", "c")
	fooC := varRT(t, a, "foo", "c")
	barC := varRT(t, a, "bar", "c2")
	if c.ID != fooC.ID || c.ID != barC.ID {
		t.Fatalf("uncast flows not grouped: main=%v foo=%v bar=%v", c, fooC, barC)
	}
	scope := map[string]bool{}
	for _, s := range c.Scope {
		scope[s] = true
	}
	for _, want := range []string{"main", "foo", "bar"} {
		if !scope[want] {
			t.Errorf("widened scope %v missing %q", c.Scope, want)
		}
	}
}

// TestCastFlowsDoNotWiden: the same shape with casts stays separate under
// STWC (that is exactly the STWC/STC distinction).
func TestCastFlowsDoNotWiden(t *testing.T) {
	a, _ := analyze(t, `
		struct ctx { int v; };
		int foo2(void *v_ctx) { return v_ctx != NULL; }
		int main(void) {
			struct ctx *c = (struct ctx*) malloc(sizeof(struct ctx));
			foo2((void*) c);
			return 0;
		}
	`)
	c := varRT(t, a, "main", "c")
	vctx := varRT(t, a, "foo2", "v_ctx")
	if c.ID == vctx.ID {
		t.Error("a cast flow was scope-widened into one RSTI-type")
	}
	if a.ClassOf(c.ID, STWC) == a.ClassOf(vctx.ID, STWC) {
		t.Error("STWC merged a cast flow")
	}
	if a.ClassOf(c.ID, STC) != a.ClassOf(vctx.ID, STC) {
		t.Error("STC did not merge the cast flow")
	}
}

// TestPlainAssignmentWidens: p2 = p1 groups the two variables (Figure 8's
// p1/p2 sharing one RSTI-type even though their declarations are separate).
func TestPlainAssignmentWidens(t *testing.T) {
	a, _ := analyze(t, `
		void f(void) {
			int x = 1;
			int *p1 = &x;
			int *p2;
			p2 = p1;
		}
		int main(void) { f(); return 0; }
	`)
	// x is address-taken so p1 holds its address but p1 itself is not
	// demoted; p1 and p2 are int* locals connected by an uncast flow.
	p1 := varRT(t, a, "f", "p1")
	p2 := varRT(t, a, "f", "p2")
	if p1.ID != p2.ID {
		t.Errorf("p1 (%v) and p2 (%v) not grouped by the plain assignment", p1, p2)
	}
}

// TestFieldFlowWidensIntoComposite: storing a variable into a composite
// member groups the variable with the field, and the group scope includes
// the struct (§4.7.4's field sensitivity).
func TestFieldFlowWidensIntoComposite(t *testing.T) {
	a, _ := analyze(t, `
		struct node { struct node *next; int v; };
		int main(void) {
			struct node *head = (struct node*) malloc(sizeof(struct node));
			struct node *n = (struct node*) malloc(sizeof(struct node));
			n->next = head;
			head = n->next;
			return 0;
		}
	`)
	head := varRT(t, a, "main", "head")
	scope := map[string]bool{}
	for _, s := range head.Scope {
		scope[s] = true
	}
	if !scope["struct node"] {
		t.Errorf("group scope %v does not include the composite type", head.Scope)
	}
}

// TestEscapedGroupsShareModifierWithAnonymousStorage: if any member of a
// flow group is address-taken, the whole group uses the escaped modifier
// so every access path agrees.
func TestEscapedGroupPropagation(t *testing.T) {
	a, _ := analyze(t, `
		void clear(int **pp) { *pp = NULL; }
		int main(void) {
			int x = 1;
			int *p = &x;
			int *q;
			q = p;
			clear(&p);
			return q == NULL;
		}
	`)
	p := varRT(t, a, "main", "p")
	q := varRT(t, a, "main", "q")
	if !p.Escaped {
		t.Fatal("address-taken p not escaped")
	}
	if p.ID != q.ID {
		t.Error("flow-grouped q did not follow p into the escaped RSTI-type")
	}
}

// TestUsesLocationSemantics pins the Adaptive location policy.
func TestUsesLocationSemantics(t *testing.T) {
	a, _ := analyze(t, figure5)
	for _, rt := range a.Types {
		if !a.UsesLocation(rt.ID, STL) {
			t.Fatal("STL must always bind location")
		}
		if a.UsesLocation(rt.ID, STWC) || a.UsesLocation(rt.ID, STC) || a.UsesLocation(rt.ID, PARTS) {
			t.Fatal("non-STL mechanisms must not bind location")
		}
		if rt.Escaped && a.UsesLocation(rt.ID, Adaptive) {
			t.Fatal("Adaptive must not bind location on escaped types")
		}
	}
}

// TestModifiersUniquePerClass: across a real program, distinct enforcement
// classes must get distinct modifiers (a collision would silently merge
// two RSTI-types' protection domains).
func TestModifiersUniquePerClass(t *testing.T) {
	a, _ := analyze(t, figure5+`
		char *extra1;
		const char *extra2;
		int use_extras(void) {
			extra1 = "a";
			extra2 = "b";
			return (int)(strlen(extra1) + strlen(extra2));
		}
	`)
	for _, mech := range []Mechanism{PARTS, STWC, STC, STL, Adaptive} {
		seen := make(map[uint64]int)
		for _, rt := range a.Types {
			if len(rt.Vars)+len(rt.Fields) == 0 {
				continue
			}
			class := a.ClassOf(rt.ID, mech)
			mod := a.Modifier(rt.ID, mech)
			if prev, ok := seen[mod]; ok && prev != class {
				// PARTS legitimately collapses by type; skip it there.
				if mech != PARTS {
					t.Errorf("%s: classes %d and %d share modifier %#x", mech, prev, class, mod)
				}
				continue
			}
			seen[mod] = class
		}
	}
}

package sti

import (
	"rsti/internal/ctypes"
	"rsti/internal/mir"
)

// OriginKind classifies where a register's pointer value came from.
type OriginKind uint8

const (
	// OriginNone: not a tracked pointer value (integers, addresses of
	// locals, arithmetic results, call results, ...).
	OriginNone OriginKind = iota
	// OriginVar: loaded from a named variable's slot.
	OriginVar
	// OriginField: loaded from a composite member.
	OriginField
	// OriginAnon: loaded through a raw pointer (heap cell, array element,
	// double-pointer dereference).
	OriginAnon
	// OriginSlotAddr: the register holds the address of a named slot
	// (the result of an alloca or gaddr) — used for address-taken
	// detection.
	OriginSlotAddr
)

// FieldKey identifies a composite member program-wide.
type FieldKey struct {
	Struct string
	Field  int
}

// Origin describes the provenance of one register's value.
type Origin struct {
	Kind  OriginKind
	Var   int      // OriginVar / OriginSlotAddr
	Field FieldKey // OriginField
	// Casted is true if the value passed through at least one pointer
	// bitcast since it was loaded (the cast-edge marker STC merging and
	// the §6.2.2 census consume).
	Casted bool
	// CastFrom is the type before the first cast in the chain.
	CastFrom *ctypes.Type
	// Ty is the static type of the value as currently held.
	Ty *ctypes.Type
}

// CastEdge records one pointer cast with variable-level precision: the
// value originating at Src (a variable or field) flows, through a bitcast,
// into Dst. STC merging unites the two RSTI-types.
type CastEdge struct {
	SrcKind OriginKind // OriginVar, OriginField or OriginAnon
	SrcVar  int
	SrcFld  FieldKey
	DstKind OriginKind
	DstVar  int
	DstFld  FieldKey
	// FromTy/ToTy are the cast's static endpoint types.
	FromTy, ToTy *ctypes.Type
}

// FuncOrigins is the per-function dataflow summary shared by the analysis
// and the instrumentation pass.
type FuncOrigins struct {
	Fn   *mir.Func
	Regs []Origin
}

// TrackOrigins computes register provenance for one function. The lowered
// IR assigns each register exactly once, in an order where definitions
// precede uses, so a single linear pass over blocks in index order
// suffices.
func TrackOrigins(prog *mir.Program, fn *mir.Func) *FuncOrigins {
	fo := &FuncOrigins{Fn: fn, Regs: make([]Origin, fn.NumRegs)}
	for _, blk := range fn.Blocks {
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			if in.Dst == mir.NoReg || in.Dst >= len(fo.Regs) {
				continue
			}
			switch in.Op {
			case mir.Alloca:
				if in.Slot.Kind == mir.SlotVar {
					fo.Regs[in.Dst] = Origin{Kind: OriginSlotAddr, Var: in.Slot.Var, Ty: ctypes.PointerTo(in.Ty)}
				}
			case mir.GlobalAddr:
				if in.Slot.Kind == mir.SlotVar {
					fo.Regs[in.Dst] = Origin{Kind: OriginSlotAddr, Var: in.Slot.Var, Ty: in.Ty}
				}
			case mir.Load:
				if in.Ty == nil || !in.Ty.IsPointer() {
					continue
				}
				switch in.Slot.Kind {
				case mir.SlotVar:
					fo.Regs[in.Dst] = Origin{Kind: OriginVar, Var: in.Slot.Var, Ty: in.Ty}
				case mir.SlotField:
					fo.Regs[in.Dst] = Origin{Kind: OriginField, Field: FieldKey{in.Slot.Struct.Name, in.Slot.Field}, Ty: in.Ty}
				default:
					fo.Regs[in.Dst] = Origin{Kind: OriginAnon, Ty: in.Ty}
				}
			case mir.CastOp:
				if in.A == mir.NoReg || in.A >= len(fo.Regs) {
					continue
				}
				src := fo.Regs[in.A]
				if isPtrCast(in) {
					o := src
					if !o.Casted {
						o.CastFrom = in.FromTy
					}
					o.Casted = true
					o.Ty = in.Ty
					fo.Regs[in.Dst] = o
				}
			}
		}
	}
	return fo
}

// isPtrCast reports whether the cast is a pointer bitcast (both endpoints
// pointer types) — the IR-level event the paper's cast handling keys on.
func isPtrCast(in *mir.Instr) bool {
	return in.Op == mir.CastOp &&
		in.FromTy != nil && in.FromTy.IsPointer() &&
		in.Ty != nil && in.Ty.IsPointer()
}

// isUniversalElem reports whether t is one of C's universal pointer types
// (void* or char*), the types through which original pointee types get
// lost (§4.7.7).
func isUniversalElem(t *ctypes.Type) bool {
	if t == nil || !t.IsPointer() {
		return false
	}
	k := t.Elem.Unqualified().Kind
	return k == ctypes.Void || k == ctypes.Char
}

// IsUniversalDoublePointer reports whether t is a pointer to a universal
// pointer (void**, char**): dereferencing such a pointer cannot recover
// the pointee's original type statically.
func IsUniversalDoublePointer(t *ctypes.Type) bool {
	return t != nil && t.IsPointer() && isUniversalElem(t.Elem)
}

// IsUniversalMultiPointer generalizes to any indirection depth: void***,
// char**, void**, ... — a multi-level pointer whose base type is
// universal, so no level of its pointee chain is statically typed. The
// paper's CE/FE mechanism "can support any level of indirection"
// (§4.7.7); these are the types that need it.
func IsUniversalMultiPointer(t *ctypes.Type) bool {
	if t == nil || t.PointerDepth() < 2 {
		return false
	}
	k := t.BaseType().Unqualified().Kind
	return k == ctypes.Void || k == ctypes.Char
}

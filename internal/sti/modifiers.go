package sti

import (
	"rsti/internal/ctypes"
	"rsti/internal/mir"
)

// hash64 is FNV-1a finished with a splitmix64 mix: a deterministic,
// well-distributed 64-bit digest of the identity string. PAC modifiers
// must be deterministic across runs so experiments reproduce exactly.
func hash64(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	h += 0x9E3779B97F4A7C15
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	return h ^ (h >> 31)
}

// Modifier returns the 64-bit PAC modifier for an RSTI-type under the
// given mechanism. For STL this is the static half; the VM XORs in the
// pointer's location (&p) at runtime (Figure 5c's "M = M ^ &p"). Safe for
// concurrent use after Analyze.
func (a *Analysis) Modifier(rtID int, mech Mechanism) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.modifier(rtID, mech)
}

func (a *Analysis) modifier(rtID int, mech Mechanism) uint64 {
	ck := modCacheKey{rtID, mech}
	if m, ok := a.modCache[ck]; ok {
		return m
	}
	var m uint64
	switch mech {
	case PARTS:
		// PARTS derives its modifier from the pointer's element type
		// alone (the LLVM ElementType), discarding scope and permission.
		m = PARTSModifier(a.Types[rtID].Type)
	case STC:
		m = hash64("stc|" + a.Types[a.find(rtID)].Key())
	default:
		m = hash64("rsti|" + a.Types[rtID].Key())
	}
	if a.modCache == nil {
		a.modCache = make(map[modCacheKey]uint64)
	}
	a.modCache[ck] = m
	return m
}

// PARTSModifier is the baseline's type-only modifier.
func PARTSModifier(t *ctypes.Type) uint64 {
	return hash64("parts|" + stripConstDeep(t).Key())
}

func stripConstDeep(t *ctypes.Type) *ctypes.Type {
	if t == nil {
		return nil
	}
	u := t.Unqualified()
	if u.Kind == ctypes.Pointer {
		inner := stripConstDeep(u.Elem)
		if inner != u.Elem {
			return ctypes.PointerTo(inner)
		}
	}
	return u
}

// SlotRT resolves the RSTI-type protecting a memory slot: the variable's
// or field's interned triple for named slots, the escaped type for
// anonymous storage. ok is false when the slot holds a non-pointer. Safe
// for concurrent use after Analyze.
func (a *Analysis) SlotRT(slot mir.Slot, ty *ctypes.Type) (*RSTIType, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.slotRT(slot, ty)
}

func (a *Analysis) slotRT(slot mir.Slot, ty *ctypes.Type) (*RSTIType, bool) {
	if ty == nil || !ty.IsPointer() {
		return nil, false
	}
	switch slot.Kind {
	case mir.SlotVar:
		if id := a.VarRT[slot.Var]; id >= 0 {
			return a.Types[id], true
		}
		// A pointer store to a var without an interned RT cannot happen
		// after internTypes, but stay defensive.
		return a.escapedType(ty), true
	case mir.SlotField:
		fk := FieldKey{slot.Struct.Name, slot.Field}
		if id, ok := a.FieldRT[fk]; ok {
			return a.Types[id], true
		}
		return a.escapedType(ty), true
	default:
		return a.escapedType(ty), true
	}
}

// SlotModifier is the convenience wrapper the instrumentation pass uses:
// class ID plus static modifier for a slot access under a mechanism, and
// whether the mechanism binds this slot's location into the modifier
// (always for STL; for Adaptive, only when the class is large enough that
// replay is a credible threat). Safe for concurrent use after Analyze.
func (a *Analysis) SlotModifier(slot mir.Slot, ty *ctypes.Type, mech Mechanism) (classID int, mod uint64, useLoc, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	rt, ok := a.slotRT(slot, ty)
	if !ok {
		return 0, 0, false, false
	}
	class := rt.ID
	if mech == STC {
		class = a.find(rt.ID)
	}
	return class, a.modifier(rt.ID, mech), a.usesLocation(rt.ID, mech), true
}

// UsesLocation reports whether slots of this RSTI-type bind their address
// into the modifier under the mechanism. Safe for concurrent use after
// Analyze.
func (a *Analysis) UsesLocation(rtID int, mech Mechanism) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.usesLocation(rtID, mech)
}

func (a *Analysis) usesLocation(rtID int, mech Mechanism) bool {
	switch mech {
	case STL:
		return true
	case Adaptive:
		rt := a.Types[rtID]
		// Escaped (anonymous-storage) types never bind location under
		// Adaptive: the same value may be reached both directly and
		// through a double pointer, and only STL's everywhere-consistent
		// location rule keeps those paths in agreement.
		if rt.Escaped {
			return false
		}
		return len(rt.Vars)+len(rt.Fields) > AdaptiveECVThreshold
	}
	return false
}

// CEOf returns the Compact Equivalent tag assigned to a Full Equivalent
// inner pointer type, if any.
func (a *Analysis) CEOf(feInner *ctypes.Type) (uint16, bool) {
	ce, ok := a.ceByFE[feInner.Unqualified().Key()]
	return ce, ok
}

// FEModifierFor computes the modifier stored in the pointer-to-pointer
// metadata table for a CE under the given mechanism: the escaped
// RSTI-type modifier of the original inner pointer type. Safe for
// concurrent use after Analyze.
func (a *Analysis) FEModifierFor(feInner *ctypes.Type, mech Mechanism) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.modifier(a.escapedType(feInner).ID, mech)
}

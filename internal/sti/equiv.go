package sti

// EquivStats are the Table 3 measurements: how finely each mechanism
// partitions the program's pointers, which bounds the viability of
// pointer-substitution (replay) attacks.
type EquivStats struct {
	// NT is the number of distinct basic pointer types among protected
	// pointers (the paper's "Number of types in program").
	NT int
	// NV is the total number of protected pointer variables (named
	// variables plus composite fields).
	NV int
	// RT is the number of RSTI-types under STWC and under STC.
	RTSTWC, RTSTC int
	// LargestECV is the largest equivalence class of variables: how many
	// variables share one RSTI-type (one merged class for STC). The
	// largest ECV under STL is 1 by construction.
	LargestECVSTWC, LargestECVSTC int
	// LargestECT is the largest equivalence class of basic types per
	// class. STWC's is 1 by construction (no combining).
	LargestECTSTWC, LargestECTSTC int
}

// Equivalence computes the Table 3 statistics for the analyzed program.
// Safe for concurrent use after Analyze.
func (a *Analysis) Equivalence() EquivStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	var st EquivStats

	basicTypes := make(map[string]bool)
	members := func(rt *RSTIType) int { return len(rt.Vars) + len(rt.Fields) }

	// Per-class accumulation for STC.
	classVars := make(map[int]int)
	classTypes := make(map[int]map[string]bool)

	for _, rt := range a.Types {
		n := members(rt)
		if n == 0 {
			// Escaped types interned only for anonymous storage protect
			// no named variable; they are enforcement classes but not
			// Table 3 members.
			continue
		}
		st.NV += n
		basicTypes[rt.Type.Unqualified().Key()] = true
		st.RTSTWC++
		if n > st.LargestECVSTWC {
			st.LargestECVSTWC = n
		}
		root := a.find(rt.ID)
		classVars[root] += n
		if classTypes[root] == nil {
			classTypes[root] = make(map[string]bool)
		}
		classTypes[root][rt.Type.Unqualified().Key()] = true
	}
	st.NT = len(basicTypes)
	st.RTSTC = len(classVars)
	for root, n := range classVars {
		if n > st.LargestECVSTC {
			st.LargestECVSTC = n
		}
		if len(classTypes[root]) > st.LargestECTSTC {
			st.LargestECTSTC = len(classTypes[root])
		}
	}
	if st.RTSTWC > 0 {
		st.LargestECTSTWC = 1 // by construction: one basic type per RSTI-type
	}
	return st
}

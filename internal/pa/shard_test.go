package pa

import (
	"math/rand"
	"sync"
	"testing"
)

// flatRef is an in-test reconstruction of the pre-shard flat memo table:
// 2^pacCacheBits direct-mapped entries indexed by the same 12 hash bits,
// with global hit/miss counters. The sharded Unit must agree with it
// probe-for-probe — the shard split is a bijection on the index space, so
// any divergence is a layout bug, not a tolerance.
type flatRef struct {
	entries      []pacCacheEntry
	hits, misses uint64
}

func newFlatRef() *flatRef {
	return &flatRef{entries: make([]pacCacheEntry, 1<<pacCacheBits)}
}

// touch replays one pacFor against the flat model, returning whether it
// hit. The cached value itself is irrelevant to the model (the cipher is
// deterministic); only residency and the counters are.
func (r *flatRef) touch(canonical uint64, k KeyID, modifier uint64) bool {
	e := &r.entries[pacHash(canonical, k, modifier)&(1<<pacCacheBits-1)]
	if e.used && e.ptr == canonical && e.mod == modifier && e.key == uint8(k) {
		r.hits++
		return true
	}
	r.misses++
	*e = pacCacheEntry{ptr: canonical, mod: modifier, key: uint8(k), used: true}
	return false
}

// TestShardedCountersMatchFlatBaseline drives a mixed re-reference
// workload through a sharded Unit and the flat reference model in
// lockstep: the summed hit/miss counters must match the unsharded
// baseline exactly at every step, not just in aggregate.
func TestShardedCountersMatchFlatBaseline(t *testing.T) {
	u := NewUnit(DefaultConfig(), GenerateKeys(0xD1CE))
	ref := newFlatRef()
	rng := rand.New(rand.NewSource(42))

	// A pointer/modifier pool small enough to re-reference (hits) and
	// large enough to collide across the whole index space (evictions).
	ptrs := make([]uint64, 1<<13)
	for i := range ptrs {
		ptrs[i] = 0x4000_0000 + uint64(rng.Intn(1<<20))*8
	}
	keys := []KeyID{KeyIA, KeyIB, KeyDA, KeyDB}
	for step := 0; step < 1<<16; step++ {
		ptr := ptrs[rng.Intn(len(ptrs))]
		k := keys[rng.Intn(len(keys))]
		mod := uint64(rng.Intn(8))
		u.Sign(ptr, k, mod)
		ref.touch(ptr, k, mod)

		if step%4093 == 0 {
			hits, misses := u.CacheStats()
			if hits != ref.hits || misses != ref.misses {
				t.Fatalf("step %d: sharded counters (%d hits, %d misses) != flat baseline (%d, %d)",
					step, hits, misses, ref.hits, ref.misses)
			}
		}
	}
	hits, misses := u.CacheStats()
	if hits != ref.hits || misses != ref.misses {
		t.Fatalf("final: sharded counters (%d hits, %d misses) != flat baseline (%d, %d)",
			hits, misses, ref.hits, ref.misses)
	}
	if hits == 0 || misses == 0 {
		t.Fatalf("degenerate workload: %d hits, %d misses — wants both populations", hits, misses)
	}
}

// TestShardIndexBijection checks the split arithmetic directly: every
// 12-bit index maps to exactly one (shard, entry) pair and back, and the
// workload above actually spreads across every shard.
func TestShardIndexBijection(t *testing.T) {
	seen := make(map[[2]uint64]bool, 1<<pacCacheBits)
	for idx := uint64(0); idx < 1<<pacCacheBits; idx++ {
		sh, e := idx>>pacEntryBits, idx&(1<<pacEntryBits-1)
		if sh >= 1<<pacShardBits {
			t.Fatalf("index %d maps to out-of-range shard %d", idx, sh)
		}
		key := [2]uint64{sh, e}
		if seen[key] {
			t.Fatalf("index %d collides with an earlier index on (shard %d, entry %d)", idx, sh, e)
		}
		seen[key] = true
		if back := sh<<pacEntryBits | e; back != idx {
			t.Fatalf("(shard %d, entry %d) reassembles to %d, want %d", sh, e, back, idx)
		}
	}

	u := NewUnit(DefaultConfig(), GenerateKeys(0xBEEF))
	for i := 0; i < 1<<14; i++ {
		u.Sign(0x4000_0000+uint64(i)*8, KeyDA, uint64(i&7))
	}
	for i := range u.shards {
		if u.shards[i].hits+u.shards[i].misses == 0 {
			t.Fatalf("shard %d never touched by a dense sweep — hash or split is skewed", i)
		}
	}
}

// TestShardedCrossUnitBitIdentity checks sharding is invisible to every
// signed and authenticated value: two units from the same keys — one
// exercised hot (warm shards, evictions), one used cold per query — agree
// on every PAC.
func TestShardedCrossUnitBitIdentity(t *testing.T) {
	keys := GenerateKeys(0x5EED)
	warm := NewUnit(DefaultConfig(), keys)
	rng := rand.New(rand.NewSource(7))

	type q struct {
		ptr, mod uint64
		k        KeyID
	}
	queries := make([]q, 1<<12)
	kid := []KeyID{KeyIA, KeyIB, KeyDA, KeyDB}
	for i := range queries {
		queries[i] = q{
			ptr: 0x4000_0000 + uint64(rng.Intn(1<<16))*8,
			mod: uint64(rng.Intn(16)),
			k:   kid[rng.Intn(len(kid))],
		}
	}
	// Heat the shards (re-referencing makes hits; the pool makes evictions).
	for pass := 0; pass < 3; pass++ {
		for _, qq := range queries {
			warm.Sign(qq.ptr, qq.k, qq.mod)
		}
	}
	for i, qq := range queries {
		cold := NewUnit(DefaultConfig(), keys)
		w := warm.Sign(qq.ptr, qq.k, qq.mod)
		c := cold.Sign(qq.ptr, qq.k, qq.mod)
		if w != c {
			t.Fatalf("query %d: warm sharded unit signs %#x, cold unit %#x", i, w, c)
		}
		if authed, ok := warm.Auth(w, qq.k, qq.mod); !ok || authed != qq.ptr {
			t.Fatalf("query %d: warm unit rejects its own signature (%#x, %v)", i, authed, ok)
		}
		if i >= 256 { // the first slice is enough cold units; keep the test fast
			break
		}
	}
}

// TestShardedParallelHammer runs one unit per goroutine (the engine
// pool's actual sharing discipline — units are single-owner) signing and
// authenticating overlapping pointer sets, under -race. What it pins: the
// padded shard layout introduces no cross-unit coupling — every unit's
// counters land exactly where a solo run puts them.
func TestShardedParallelHammer(t *testing.T) {
	const workers = 8
	keys := GenerateKeys(0xFEED)

	solo := NewUnit(DefaultConfig(), keys)
	hammer := func(u *Unit, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 1<<12; i++ {
			ptr := 0x4000_0000 + uint64(rng.Intn(1<<14))*8
			mod := uint64(rng.Intn(4))
			s := u.Sign(ptr, KeyDA, mod)
			if authed, ok := u.Auth(s, KeyDA, mod); !ok || authed != ptr {
				panic("sharded unit rejected its own signature under load")
			}
		}
	}
	hammer(solo, 99)
	soloHits, soloMisses := solo.CacheStats()

	units := make([]*Unit, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		units[w] = NewUnit(DefaultConfig(), keys)
		wg.Add(1)
		go func(u *Unit) {
			defer wg.Done()
			hammer(u, 99) // same seed: every unit replays the solo trace
		}(units[w])
	}
	wg.Wait()
	for w, u := range units {
		hits, misses := u.CacheStats()
		if hits != soloHits || misses != soloMisses {
			t.Fatalf("unit %d under parallel load: (%d hits, %d misses), solo run had (%d, %d)",
				w, hits, misses, soloHits, soloMisses)
		}
	}
}

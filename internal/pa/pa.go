// Package pa models the ARMv8.3-A Pointer Authentication (PA) primitive
// that RSTI uses as its enforcement substrate.
//
// The model reproduces the architectural contract that RSTI depends on:
//
//   - Five 128-bit keys (IA, IB, DA, DB, GA) held by a trusted agent (the
//     kernel in the paper's threat model, the Unit here).
//   - pac* instructions compute a Pointer Authentication Code over the
//     pointer and a 64-bit modifier using QARMA, and place it in the unused
//     top bits of the pointer.
//   - aut* instructions recompute and compare the PAC. On success the
//     pointer is restored to its canonical form; on failure the top two
//     bits of the PAC field are flipped so that the pointer is
//     non-canonical and faults on use.
//   - xpac* strips a PAC without authenticating.
//   - Top-Byte-Ignore (TBI) optionally reserves bits 63:56 for software
//     tags (RSTI's Compact Equivalent tag for pointer-to-pointer types),
//     shrinking the PAC field to bits 55:48.
//
// Differences from hardware are deliberate and documented: the VM traps at
// authentication time (like ARMv8.6 FPAC) instead of deferring the fault to
// the first dereference, and the virtual address space is a flat user-mode
// range so "canonical" simply means "all PAC bits zero".
package pa

import (
	"fmt"

	"rsti/internal/qarma"
)

// KeyID selects one of the five architectural PA keys.
type KeyID uint8

const (
	// KeyIA and KeyIB sign code (instruction) pointers.
	KeyIA KeyID = iota
	KeyIB
	// KeyDA and KeyDB sign data pointers. RSTI signs all protected
	// pointers with KeyDA (the paper's pacda/autda, key = 2).
	KeyDA
	KeyDB
	// KeyGA computes generic 32-bit MACs (pacga).
	KeyGA

	// NumKeys is the number of architectural PA keys.
	NumKeys
)

// String returns the architectural name of the key.
func (k KeyID) String() string {
	switch k {
	case KeyIA:
		return "IA"
	case KeyIB:
		return "IB"
	case KeyDA:
		return "DA"
	case KeyDB:
		return "DB"
	case KeyGA:
		return "GA"
	}
	return fmt.Sprintf("KeyID(%d)", uint8(k))
}

// Key is one 128-bit PA key, split into the two QARMA 64-bit halves.
type Key struct {
	W0, K0 uint64
}

// Config fixes the virtual-address layout the PA unit operates in.
type Config struct {
	// VABits is the number of virtual address bits (48 on the paper's
	// Apple M1 configuration). Bits above VABits-1 are PAC/tag bits.
	VABits int
	// TBI enables Top-Byte-Ignore: bits 63:56 are software-visible tag
	// bits excluded from both the PAC field and authentication, exactly
	// the feature the paper's pointer-to-pointer mechanism relies on.
	TBI bool
	// Rounds is the QARMA forward round count (qarma.StandardRounds if 0).
	Rounds int
}

// DefaultConfig matches the paper's evaluation platform: 48-bit VA with TBI
// available for the pointer-to-pointer Compact Equivalent tag.
func DefaultConfig() Config {
	return Config{VABits: 48, TBI: true, Rounds: qarma.StandardRounds}
}

// pacCacheBits sizes the per-Unit PAC memoization cache (2^bits entries,
// 32 bytes each → 128 KiB). Direct-mapped: a colliding (key, pointer,
// modifier) triple simply evicts the previous resident, so the cache can
// never change a result, only skip recomputing it.
//
// The table is physically laid out as 2^pacShardBits cache-line-padded
// shards of 2^pacEntryBits entries each. Units are single-goroutine
// objects, but an engine pool runs many units — one per worker — and a
// flat table made adjacent workers' hot entries and hit/miss counters
// share cache lines across allocations; padding each shard (and its
// counters) to a 64-byte multiple kills that false sharing. The index
// split is a bijection on the same 12 hash bits the flat table used —
// shard = idx>>pacEntryBits, entry = idx&(2^pacEntryBits-1) — so every
// probe lands on the same logical slot as before and hit/miss totals are
// bit-identical to the unsharded layout by construction.
const (
	pacCacheBits = 12
	pacShardBits = 3
	pacEntryBits = pacCacheBits - pacShardBits
)

type pacCacheEntry struct {
	ptr, mod, pac uint64
	key           uint8
	used          bool
}

// pacShard is one padded slice of the memo table: 2^pacEntryBits 32-byte
// entries plus this shard's own hit/miss counters, padded so the struct
// is a multiple of 64 bytes and no two shards (or two units' counters)
// ever share a line.
type pacShard struct {
	entries      [1 << pacEntryBits]pacCacheEntry
	hits, misses uint64
	_            [48]byte
}

// Unit is the PA "hardware": the key registers plus the PAC algorithm.
// The key material is immutable after construction; the PAC memoization
// cache is per-Unit mutable state, so a Unit must not be shared across
// goroutines (the VM gives every Machine its own Unit, which keeps the
// Figure 9 fan-out race-free). Cache hits and misses are observable only
// through CacheStats — Sign/Auth results are bit-identical either way.
type Unit struct {
	cfg     Config
	ciphers [NumKeys]*qarma.Cipher

	vaMask  uint64 // low VABits set
	pacMask uint64 // the bits the PAC occupies
	tagMask uint64 // TBI byte (0 when TBI is off)

	shards *[1 << pacShardBits]pacShard
}

// NewUnit builds a PA unit with the given keys. Keys are generated and
// installed by the trusted side (see GenerateKeys); programs under test
// never observe them, matching the paper's threat model.
func NewUnit(cfg Config, keys [NumKeys]Key) *Unit {
	if cfg.VABits < 32 || cfg.VABits > 56 {
		panic(fmt.Sprintf("pa: VABits %d out of supported range [32,56]", cfg.VABits))
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = qarma.StandardRounds
	}
	u := &Unit{cfg: cfg}
	for i := range keys {
		u.ciphers[i] = qarma.New(keys[i].W0, keys[i].K0, cfg.Rounds)
	}
	u.vaMask = (uint64(1) << cfg.VABits) - 1
	if cfg.TBI {
		u.tagMask = uint64(0xFF) << 56
		u.pacMask = ^(u.vaMask | u.tagMask)
	} else {
		u.pacMask = ^u.vaMask
	}
	u.shards = new([1 << pacShardBits]pacShard)
	return u
}

// Config returns the unit's configuration.
func (u *Unit) Config() Config { return u.cfg }

// PACBits reports how many pointer bits carry the PAC under this layout.
func (u *Unit) PACBits() int {
	n := 0
	for m := u.pacMask; m != 0; m >>= 1 {
		n += int(m & 1)
	}
	return n
}

// pacFor computes the PAC field (positioned in the pointer's PAC bits) for
// a canonical pointer under the given key and modifier, memoizing through
// the direct-mapped cache. The workloads sign and authenticate the same
// few (pointer, modifier) pairs millions of times — one equivalence class
// shares one modifier — so the hit rate is high enough to skip the cipher
// on most PA operations.
func (u *Unit) pacFor(canonical uint64, k KeyID, modifier uint64) uint64 {
	if pac, ok := u.probe(canonical, k, modifier); ok {
		return pac
	}
	idx := pacHash(canonical, k, modifier) & (1<<pacCacheBits - 1)
	sh := &u.shards[idx>>pacEntryBits]
	sh.misses++
	pac := u.ciphers[k].Encrypt(canonical, modifier) & u.pacMask
	sh.entries[idx&(1<<pacEntryBits-1)] = pacCacheEntry{ptr: canonical, mod: modifier, pac: pac, key: uint8(k), used: true}
	return pac
}

// pacHash indexes the direct-mapped memoization cache.
func pacHash(canonical uint64, k KeyID, modifier uint64) uint64 {
	h := canonical ^ modifier*0x9E3779B97F4A7C15 ^ uint64(k)<<59
	return h ^ h>>29
}

// probe answers a PAC lookup from the cache alone. A hit is counted; a
// miss is NOT — the caller either falls through to the cipher (pacFor,
// which counts the miss) or retries via Sign/Auth (which reach pacFor and
// count it exactly once). Keeping the miss accounting in one place is what
// lets FastSign/FastAuth below stay bit-identical to Sign/Auth.
func (u *Unit) probe(canonical uint64, k KeyID, modifier uint64) (uint64, bool) {
	idx := pacHash(canonical, k, modifier) & (1<<pacCacheBits - 1)
	sh := &u.shards[idx>>pacEntryBits]
	e := &sh.entries[idx&(1<<pacEntryBits-1)]
	if e.used && e.ptr == canonical && e.mod == modifier && e.key == uint8(k) {
		sh.hits++
		return e.pac, true
	}
	return 0, false
}

// CacheStats reports the PAC memoization cache's hit and miss counts since
// construction, summed across shards. The sharded split is a bijection of
// the flat table's index space, so these totals are bit-identical to what
// the unsharded layout counted.
func (u *Unit) CacheStats() (hits, misses uint64) {
	for i := range u.shards {
		hits += u.shards[i].hits
		misses += u.shards[i].misses
	}
	return hits, misses
}

// Sign computes the PAC for ptr under key k and the 64-bit modifier, and
// returns ptr with the PAC inserted in its top bits (the pac* instruction).
// Any prior PAC bits are replaced; a TBI tag byte is preserved.
//
// NULL is never signed: zero-initialized pointer storage (C's .bss, calloc)
// must remain authenticable without an explicit signing store, so the
// all-zero pointer signs to itself and authenticates as itself — the
// convention production arm64e deployments use. Forging it only buys an
// attacker a null dereference, which faults.
func (u *Unit) Sign(ptr uint64, k KeyID, modifier uint64) uint64 {
	canonical := ptr & u.vaMask
	if canonical == 0 {
		return ptr &^ u.pacMask
	}
	return canonical | ptr&u.tagMask | u.pacFor(canonical, k, modifier)
}

// FastSign is the memo-hit-only twin of Sign, used by the threaded tier's
// signing closures: it answers from the PAC cache without touching the
// cipher. On a miss it reports ok=false without counting anything; the
// caller then falls back to Sign, which counts exactly one miss — so the
// observable cache counters are bit-identical to calling Sign directly.
func (u *Unit) FastSign(ptr uint64, k KeyID, modifier uint64) (signed uint64, ok bool) {
	canonical := ptr & u.vaMask
	if canonical == 0 {
		return ptr &^ u.pacMask, true
	}
	pac, hit := u.probe(canonical, k, modifier)
	if !hit {
		return 0, false
	}
	return canonical | ptr&u.tagMask | pac, true
}

// FastAuth is the memo-hit-only twin of Auth. hit=false means the cache
// had no answer (nothing was counted; fall back to Auth). When hit is
// true, (authed, ok) carry exactly what Auth would have returned,
// including the flipped error bits on a PAC mismatch.
func (u *Unit) FastAuth(ptr uint64, k KeyID, modifier uint64) (authed uint64, ok, hit bool) {
	canonical := ptr & u.vaMask
	if canonical == 0 && ptr&u.pacMask == 0 {
		return ptr, true, true // NULL authenticates as NULL; see Sign
	}
	want, cached := u.probe(canonical, k, modifier)
	if !cached {
		return 0, false, false
	}
	if ptr&u.pacMask == want {
		return canonical | ptr&u.tagMask, true, true
	}
	return ptr ^ u.errorBits(), false, true
}

// Auth verifies the PAC on ptr under key k and modifier (the aut*
// instruction). On success it returns the canonical pointer (tag byte
// preserved) and true. On failure it returns the pointer with the top two
// PAC bits corrupted — a non-canonical value that faults on use — and
// false. Callers that model ARMv8.6 FPAC (as the RSTI VM does) trap
// immediately when ok is false.
func (u *Unit) Auth(ptr uint64, k KeyID, modifier uint64) (authed uint64, ok bool) {
	canonical := ptr & u.vaMask
	if canonical == 0 && ptr&u.pacMask == 0 {
		return ptr, true // NULL authenticates as NULL; see Sign
	}
	want := u.pacFor(canonical, k, modifier)
	if ptr&u.pacMask == want {
		return canonical | ptr&u.tagMask, true
	}
	return ptr ^ u.errorBits(), false
}

// errorBits returns the two high PAC bits that Auth flips on failure.
func (u *Unit) errorBits() uint64 {
	// Highest two bits of the PAC field.
	var bits uint64
	n := 0
	for b := 63; b >= 0 && n < 2; b-- {
		if u.pacMask&(1<<uint(b)) != 0 {
			bits |= 1 << uint(b)
			n++
		}
	}
	return bits
}

// Strip removes any PAC from ptr without authenticating (the xpac*
// instruction). RSTI uses it on pointers handed to uninstrumented external
// libraries. The TBI tag byte is preserved.
func (u *Unit) Strip(ptr uint64) uint64 {
	return ptr&u.vaMask | ptr&u.tagMask
}

// HasPAC reports whether any PAC bits are set on ptr.
func (u *Unit) HasPAC(ptr uint64) bool { return ptr&u.pacMask != 0 }

// IsCanonical reports whether ptr is directly dereferenceable: no PAC bits
// set (tag byte is ignored, as TBI hardware does).
func (u *Unit) IsCanonical(ptr uint64) bool { return ptr&u.pacMask == 0 }

// Canonical returns the dereferenceable address bits of ptr.
func (u *Unit) Canonical(ptr uint64) uint64 { return ptr & u.vaMask }

// SetTag writes the TBI tag byte (bits 63:56). It panics if the unit was
// configured without TBI, since the bits would alias the PAC field.
func (u *Unit) SetTag(ptr uint64, tag byte) uint64 {
	if !u.cfg.TBI {
		panic("pa: SetTag without TBI")
	}
	return ptr&^u.tagMask | uint64(tag)<<56
}

// Tag reads the TBI tag byte.
func (u *Unit) Tag(ptr uint64) byte {
	return byte(ptr >> 56)
}

// GenericMAC computes the pacga result: a 32-bit MAC over (value, modifier)
// in the top half of the result, zero in the bottom half.
func (u *Unit) GenericMAC(value, modifier uint64) uint64 {
	return u.ciphers[KeyGA].Encrypt(value, modifier) & 0xFFFFFFFF_00000000
}

// GenerateKeys derives the five PA keys deterministically from a seed using
// splitmix64. Key generation is the trusted kernel's job in the paper's
// threat model; determinism here keeps every reported experiment
// reproducible.
func GenerateKeys(seed uint64) [NumKeys]Key {
	var keys [NumKeys]Key
	s := seed
	next := func() uint64 {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := range keys {
		keys[i] = Key{W0: next(), K0: next()}
	}
	return keys
}

package pa

import (
	"testing"
	"testing/quick"
)

func testUnit(t testing.TB, cfg Config) *Unit {
	t.Helper()
	return NewUnit(cfg, GenerateKeys(0x5151))
}

func defaultUnit(t testing.TB) *Unit { return testUnit(t, DefaultConfig()) }

func TestSignAuthRoundTrip(t *testing.T) {
	u := defaultUnit(t)
	f := func(raw, mod uint64) bool {
		ptr := raw & u.vaMask
		signed := u.Sign(ptr, KeyDA, mod)
		authed, ok := u.Auth(signed, KeyDA, mod)
		return ok && authed == ptr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAuthRejectsWrongModifier(t *testing.T) {
	// Use the non-TBI layout: its 16-bit PAC collides with probability
	// 2^-16, so 100 quick samples rejecting uniformly is a solid property.
	// (The 8-bit TBI layout legitimately collides about once per 256
	// trials; its collision *rate* is bounded in
	// TestDistinctModifiersUsuallyDistinctPACs instead.)
	u := testUnit(t, Config{VABits: 48, TBI: false})
	f := func(raw, m1, m2 uint64) bool {
		if m1 == m2 {
			return true
		}
		ptr := raw & u.vaMask
		signed := u.Sign(ptr, KeyDA, m1)
		_, ok := u.Auth(signed, KeyDA, m2)
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAuthRejectsWrongKey(t *testing.T) {
	u := testUnit(t, Config{VABits: 48, TBI: false})
	ptr := uint64(0x7fff12345678)
	signed := u.Sign(ptr, KeyDA, 42)
	if _, ok := u.Auth(signed, KeyDB, 42); ok {
		t.Error("authentication succeeded under the wrong key")
	}
	if _, ok := u.Auth(signed, KeyIA, 42); ok {
		t.Error("data-key PAC accepted by instruction key")
	}
}

func TestAuthRejectsCorruptedPointer(t *testing.T) {
	u := testUnit(t, Config{VABits: 48, TBI: false})
	ptr := uint64(0x7fff12345678)
	signed := u.Sign(ptr, KeyDA, 7)
	for bit := 0; bit < u.cfg.VABits; bit++ {
		corrupted := signed ^ (1 << uint(bit))
		if _, ok := u.Auth(corrupted, KeyDA, 7); ok {
			t.Errorf("flipping address bit %d still authenticated", bit)
		}
	}
}

func TestAuthFailureProducesNonCanonicalPointer(t *testing.T) {
	u := defaultUnit(t)
	ptr := uint64(0x7fff12345678)
	signed := u.Sign(ptr, KeyDA, 1)
	bad, ok := u.Auth(signed, KeyDA, 2)
	if ok {
		t.Fatal("expected failure")
	}
	if u.IsCanonical(bad) {
		t.Error("failed authentication returned a canonical (usable) pointer")
	}
}

func TestStripRemovesPAC(t *testing.T) {
	u := defaultUnit(t)
	f := func(raw, mod uint64) bool {
		ptr := raw & u.vaMask
		return u.Strip(u.Sign(ptr, KeyDA, mod)) == ptr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSignIsDeterministic(t *testing.T) {
	u := defaultUnit(t)
	a := u.Sign(0x1000, KeyDA, 99)
	b := u.Sign(0x1000, KeyDA, 99)
	if a != b {
		t.Error("Sign is not deterministic")
	}
}

func TestDistinctModifiersUsuallyDistinctPACs(t *testing.T) {
	u := defaultUnit(t)
	ptr := uint64(0x7f0000001000)
	collisions := 0
	base := u.Sign(ptr, KeyDA, 0)
	const n = 4096
	for m := uint64(1); m <= n; m++ {
		if u.Sign(ptr, KeyDA, m) == base {
			collisions++
		}
	}
	// 8-bit PAC (TBI on) collides with p = 2^-8; expect ~16 of 4096.
	if collisions > n/64 {
		t.Errorf("PAC collisions = %d / %d, far above the 2^-8 expectation", collisions, n)
	}
}

func TestTBITagPreservedBySignAndAuth(t *testing.T) {
	u := defaultUnit(t)
	ptr := u.SetTag(0x7fff00001234, 0xAB)
	signed := u.Sign(ptr, KeyDA, 5)
	if u.Tag(signed) != 0xAB {
		t.Fatalf("Sign clobbered TBI tag: %#x", u.Tag(signed))
	}
	authed, ok := u.Auth(signed, KeyDA, 5)
	if !ok {
		t.Fatal("auth failed")
	}
	if u.Tag(authed) != 0xAB {
		t.Errorf("Auth clobbered TBI tag: %#x", u.Tag(authed))
	}
}

func TestTagBitsDoNotAffectPAC(t *testing.T) {
	// With TBI on, the tag byte is ignored by authentication, so a tagged
	// and untagged pointer carry the same PAC.
	u := defaultUnit(t)
	ptr := uint64(0x7fff00001234)
	signed := u.Sign(ptr, KeyDA, 5)
	tagged := u.Sign(u.SetTag(ptr, 0x7F), KeyDA, 5)
	if signed&u.pacMask != tagged&u.pacMask {
		t.Error("tag byte changed the PAC under TBI")
	}
}

func TestNoTBIUsesSixteenPACBits(t *testing.T) {
	u := testUnit(t, Config{VABits: 48, TBI: false})
	if got := u.PACBits(); got != 16 {
		t.Errorf("PACBits = %d, want 16", got)
	}
	ut := defaultUnit(t)
	if got := ut.PACBits(); got != 8 {
		t.Errorf("PACBits with TBI = %d, want 8", got)
	}
}

func TestSetTagPanicsWithoutTBI(t *testing.T) {
	u := testUnit(t, Config{VABits: 48, TBI: false})
	defer func() {
		if recover() == nil {
			t.Error("SetTag without TBI did not panic")
		}
	}()
	u.SetTag(0x1000, 1)
}

func TestNewUnitPanicsOnBadVABits(t *testing.T) {
	for _, va := range []int{0, 31, 57, 64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("VABits=%d did not panic", va)
				}
			}()
			NewUnit(Config{VABits: va}, GenerateKeys(1))
		}()
	}
}

func TestGenericMAC(t *testing.T) {
	u := defaultUnit(t)
	mac := u.GenericMAC(0xdead, 0xbeef)
	if mac&0xFFFFFFFF != 0 {
		t.Error("GenericMAC low half not zero")
	}
	if mac == 0 {
		t.Error("GenericMAC returned zero MAC on probe input")
	}
	if u.GenericMAC(0xdead, 0xbeef) != mac {
		t.Error("GenericMAC not deterministic")
	}
	if u.GenericMAC(0xdead, 0xbee0) == mac {
		t.Error("GenericMAC ignores modifier")
	}
}

func TestGenerateKeysDistinct(t *testing.T) {
	keys := GenerateKeys(7)
	seen := map[Key]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("duplicate key material: %+v", k)
		}
		seen[k] = true
	}
	other := GenerateKeys(8)
	if keys == other {
		t.Error("different seeds produced identical key sets")
	}
	if keys != GenerateKeys(7) {
		t.Error("key generation is not deterministic")
	}
}

func TestKeyIDString(t *testing.T) {
	names := map[KeyID]string{KeyIA: "IA", KeyIB: "IB", KeyDA: "DA", KeyDB: "DB", KeyGA: "GA"}
	for id, want := range names {
		if id.String() != want {
			t.Errorf("KeyID(%d).String() = %q, want %q", id, id.String(), want)
		}
	}
	if KeyID(9).String() != "KeyID(9)" {
		t.Errorf("unknown key id formatted as %q", KeyID(9).String())
	}
}

func BenchmarkSign(b *testing.B) {
	u := defaultUnit(b)
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = u.Sign(uint64(i)&u.vaMask, KeyDA, 42)
	}
	_ = sink
}

func BenchmarkAuth(b *testing.B) {
	u := defaultUnit(b)
	signed := u.Sign(0x7fff00001234, KeyDA, 42)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u.Auth(signed, KeyDA, 42)
	}
}

func TestRoundsConfiguration(t *testing.T) {
	keys := GenerateKeys(3)
	u5 := NewUnit(Config{VABits: 48, Rounds: 5}, keys)
	u7 := NewUnit(Config{VABits: 48, Rounds: 7}, keys)
	ptr := uint64(0x7fff00002000)
	if u5.Sign(ptr, KeyDA, 9) == u7.Sign(ptr, KeyDA, 9) {
		t.Error("different round counts produced identical PACs on the probe")
	}
	for _, u := range []*Unit{u5, u7} {
		if v, ok := u.Auth(u.Sign(ptr, KeyDA, 9), KeyDA, 9); !ok || v != ptr {
			t.Error("roundtrip failed")
		}
	}
}

func TestVABitsLayouts(t *testing.T) {
	for _, va := range []int{39, 48, 52} {
		u := testUnit(t, Config{VABits: va, TBI: false})
		if got := u.PACBits(); got != 64-va {
			t.Errorf("VABits=%d: PACBits = %d, want %d", va, got, 64-va)
		}
		ptr := (uint64(1) << (va - 1)) - 0x1000
		signed := u.Sign(ptr, KeyDA, 1)
		if u.Canonical(signed) != ptr {
			t.Errorf("VABits=%d: address bits disturbed", va)
		}
		if v, ok := u.Auth(signed, KeyDA, 1); !ok || v != ptr {
			t.Errorf("VABits=%d: roundtrip failed", va)
		}
	}
}

func TestSignIdempotentOnResigning(t *testing.T) {
	// Signing a signed pointer replaces the PAC (it does not stack):
	// Sign(Sign(p, m1), m2) == Sign(p, m2).
	u := defaultUnit(t)
	f := func(raw, m1, m2 uint64) bool {
		ptr := raw & u.vaMask
		return u.Sign(u.Sign(ptr, KeyDA, m1), KeyDA, m2) == u.Sign(ptr, KeyDA, m2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNullPointerConvention(t *testing.T) {
	// NULL signs to itself and authenticates under any modifier, so
	// zero-initialized pointer storage works without an explicit signing
	// store (the arm64e convention).
	u := defaultUnit(t)
	if got := u.Sign(0, KeyDA, 123); got != 0 {
		t.Errorf("Sign(NULL) = %#x, want 0", got)
	}
	v, ok := u.Auth(0, KeyDA, 456)
	if !ok || v != 0 {
		t.Errorf("Auth(NULL) = %#x, %v", v, ok)
	}
	// A tagged NULL keeps its tag through signing.
	tagged := u.SetTag(0, 0x3)
	if got := u.Sign(tagged, KeyDA, 1); got != tagged {
		t.Errorf("Sign(tagged NULL) = %#x, want %#x", got, tagged)
	}
	// But a NULL with forged PAC bits still fails.
	if _, ok := u.Auth(uint64(1)<<50, KeyDA, 1); ok {
		t.Error("zero address with nonzero PAC bits authenticated")
	}
}

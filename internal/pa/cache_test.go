package pa

import "testing"

// TestCacheHitMissIdenticalResults checks that a cache hit returns exactly
// what the miss computed: signing the same pointer twice matches, and both
// match a cold Unit built from the same keys.
func TestCacheHitMissIdenticalResults(t *testing.T) {
	keys := GenerateKeys(0xCAFE)
	warm := NewUnit(DefaultConfig(), keys)
	cold := NewUnit(DefaultConfig(), keys)

	ptr, mod := uint64(0x4000_1234), uint64(0xFEEDBEEF)
	first := warm.Sign(ptr, KeyDA, mod) // miss
	hit := warm.Sign(ptr, KeyDA, mod)   // hit
	if first != hit {
		t.Fatalf("hit %#x != miss %#x", hit, first)
	}
	if want := cold.Sign(ptr, KeyDA, mod); first != want {
		t.Fatalf("cached unit signs %#x, cold unit %#x", first, want)
	}
	hits, misses := warm.CacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("CacheStats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}

	// Auth through the cache (hit) and cold (miss) agree too.
	authedW, okW := warm.Auth(first, KeyDA, mod)
	authedC, okC := cold.Auth(first, KeyDA, mod)
	if !okW || !okC || authedW != authedC {
		t.Fatalf("Auth disagree: warm (%#x,%v) cold (%#x,%v)", authedW, okW, authedC, okC)
	}
}

// TestCacheTamperedPointerStillTraps checks memoization never rescues a
// forged pointer: flipping any PAC or address bit after signing must still
// fail authentication, whether the PAC computation hits or misses.
func TestCacheTamperedPointerStillTraps(t *testing.T) {
	u := NewUnit(DefaultConfig(), GenerateKeys(0xCAFE))
	ptr, mod := uint64(0x4000_1234), uint64(0x1717)
	signed := u.Sign(ptr, KeyDA, mod)

	// PAC-bit flip: same canonical pointer → the recomputation is a cache
	// hit, and must still reject.
	if _, ok := u.Auth(signed^(1<<50), KeyDA, mod); ok {
		t.Fatal("authenticated a pointer with a flipped PAC bit (cache hit path)")
	}
	// Address-bit flip: different canonical pointer → cache miss, reject.
	if _, ok := u.Auth(signed^2, KeyDA, mod); ok {
		t.Fatal("authenticated a pointer with a flipped address bit (cache miss path)")
	}
	// Wrong modifier must reject even though the pointer was cached.
	if _, ok := u.Auth(signed, KeyDA, mod^1); ok {
		t.Fatal("authenticated under the wrong modifier")
	}
	// The genuine pointer still authenticates after all the failures.
	if authed, ok := u.Auth(signed, KeyDA, mod); !ok || authed != ptr {
		t.Fatalf("genuine pointer no longer authenticates: (%#x, %v)", authed, ok)
	}
}

// TestCacheKeySeparation checks colliding slots across keys cannot leak a
// PAC from one key to another.
func TestCacheKeySeparation(t *testing.T) {
	keys := GenerateKeys(0xCAFE)
	u := NewUnit(DefaultConfig(), keys)
	cold := NewUnit(DefaultConfig(), keys)
	ptr, mod := uint64(0x4000_8888), uint64(0)
	for _, k := range []KeyID{KeyIA, KeyIB, KeyDA, KeyDB} {
		if got, want := u.Sign(ptr, k, mod), cold.Sign(ptr, k, mod); got != want {
			t.Fatalf("key %s: warm %#x != cold %#x", k, got, want)
		}
	}
}

func BenchmarkSignColdCache(b *testing.B) {
	u := NewUnit(DefaultConfig(), GenerateKeys(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// A fresh pointer every iteration defeats the memoization.
		u.Sign(uint64(0x4000_0000+i), KeyDA, 0x42)
	}
}

func BenchmarkSignWarmCache(b *testing.B) {
	u := NewUnit(DefaultConfig(), GenerateKeys(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u.Sign(0x4000_1234, KeyDA, 0x42)
	}
}

package rsti

import (
	"context"

	"rsti/internal/engine"
)

// EngineConfig sizes an Engine.
type EngineConfig struct {
	// Workers is the number of concurrent VM workers. Each worker is a
	// shard with its own reusable machine state (call-frame pool, warm
	// PAC caches). Zero means GOMAXPROCS.
	Workers int
	// QueueDepth bounds how many submitted-but-not-yet-running jobs the
	// engine holds; a full queue makes Submit block (backpressure) and
	// TrySubmit fail with ErrQueueFull. Zero means 4×Workers.
	QueueDepth int
}

// EngineStats is a snapshot of an Engine's aggregate counters: gauges
// (Queued, Running), admission counts (Submitted, Rejected), outcome
// counts (Completed, Trapped, Cancelled, Panicked), and the modelled
// execution volume (Instrs, Cycles, PAC cache counters) suitable for a
// metrics endpoint. Derived rates: PACCacheHitRate, InstrsPerSec.
type EngineStats = engine.Stats

// Engine is a long-lived concurrent execution service for one compiled
// Program — the compile-once/run-many serving shape of the paper's server
// workloads (§6.6). It reuses the Program's cached per-mechanism builds
// and each worker's warm machine state, so steady-state serving does not
// re-instrument or re-allocate per request. Every run still gets its own
// virtual machine: reported numbers (cycles, trap outcomes, equivalence
// statistics) are bit-identical to single-threaded Program.Run calls.
//
//	p, _ := rsti.Compile(src)
//	eng := rsti.NewEngine(p, rsti.EngineConfig{Workers: 8})
//	defer eng.Close()
//	res, err := eng.Submit(ctx, rsti.STWC, rsti.WithTimeout(time.Second))
//
// Submit is safe for arbitrary concurrent use. One poisoned run (a
// panicking hook, a runaway printf loop, an exhausted budget) cannot take
// down the engine: panics are isolated to the run, output capture is
// capped, and budgets/deadlines stop the interpreter at its cancellation
// checkpoints.
type Engine struct {
	p *Program
	e *engine.Engine
}

// NewEngine starts an execution engine serving runs of p.
func NewEngine(p *Program, cfg EngineConfig) *Engine {
	return &Engine{
		p: p,
		e: engine.New(engine.Config{Workers: cfg.Workers, QueueDepth: cfg.QueueDepth}),
	}
}

// Program returns the program this engine serves.
func (e *Engine) Program() *Program { return e.p }

// Submit runs the program under mech on an engine worker and returns the
// result. It blocks while the queue is full (backpressure), returning
// ctx.Err() if ctx ends first or ErrEngineClosed if the engine shuts
// down. Execution outcomes — traps, cancellation, budget exhaustion —
// are reported inside the Result, exactly as Program.RunContext reports
// them.
func (e *Engine) Submit(ctx context.Context, mech Mechanism, opts ...RunOption) (*Result, error) {
	return e.e.Submit(ctx, e.job(mech, opts))
}

// TrySubmit is Submit without the blocking: when the queue is full it
// fails immediately with ErrQueueFull so callers can shed load.
func (e *Engine) TrySubmit(ctx context.Context, mech Mechanism, opts ...RunOption) (*Result, error) {
	return e.e.TrySubmit(ctx, e.job(mech, opts))
}

// Stats snapshots the engine's aggregate counters.
func (e *Engine) Stats() EngineStats { return e.e.Stats() }

// Close shuts the engine down: new submissions fail with
// ErrEngineClosed, in-flight runs are cancelled at their next
// interpreter checkpoint, and Close returns once every worker has
// stopped.
func (e *Engine) Close() { e.e.Close() }

func (e *Engine) job(mech Mechanism, opts []RunOption) engine.Job {
	cfg := e.p.defaults
	for _, o := range opts {
		o.applyRun(&cfg)
	}
	return engine.Job{Comp: e.p.c, Mech: mech, Cfg: cfg}
}

// Benchmarks regenerating each table and figure of the paper's evaluation.
// Run all of them with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the reproduced headline numbers as custom metrics
// (overheads in percent, counts as units), so `go test -bench` output is
// itself a compact reproduction report; cmd/rstibench renders the full
// tables.
package rsti_test

import (
	"testing"

	"rsti/internal/eval"
	"rsti/internal/sti"
	"rsti/internal/workload"
)

// BenchmarkTable1AttackMatrix reruns the 12-attack security matrix
// (Table 1): every attack must succeed on the baseline and be detected by
// all three RSTI mechanisms.
func BenchmarkTable1AttackMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.MeasureTable1()
		if err != nil {
			b.Fatal(err)
		}
		detected := 0
		for _, row := range res.Rows {
			for _, mech := range sti.RSTIMechanisms {
				if row.Results[mech].Detected {
					detected++
				}
			}
		}
		b.ReportMetric(float64(len(res.Rows)), "attacks")
		b.ReportMetric(float64(detected), "detections")
		if detected != len(res.Rows)*len(sti.RSTIMechanisms) {
			b.Fatalf("only %d detections", detected)
		}
	}
}

// BenchmarkTable3EquivalenceClasses regenerates the SPEC CPU2006
// equivalence-class statistics from the full-size static programs.
func BenchmarkTable3EquivalenceClasses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		entries, err := eval.MeasureTable3()
		if err != nil {
			b.Fatal(err)
		}
		var nv, rt int
		for _, e := range entries {
			nv += e.Measured.NV
			rt += e.Measured.RTSTWC
		}
		b.ReportMetric(float64(nv), "NV-total")
		b.ReportMetric(float64(rt), "RT-STWC-total")
	}
}

// BenchmarkPointerToPointerCensus regenerates the §6.2.2 census (paper:
// 7,489 pointer-to-pointer sites, 25 needing the CE/FE mechanism).
func BenchmarkPointerToPointerCensus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		entries, err := eval.MeasureTable3()
		if err != nil {
			b.Fatal(err)
		}
		total, special := 0, 0
		for _, e := range entries {
			total += e.PPTotal
			special += e.PPCE
		}
		b.ReportMetric(float64(total), "pp-sites")
		b.ReportMetric(float64(special), "pp-CE-sites")
	}
}

// BenchmarkFigure9Overheads measures every suite under the three RSTI
// mechanisms and reports the per-suite and overall geometric means the
// paper headlines (5.29% / 2.97% / 11.12%).
func BenchmarkFigure9Overheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := eval.MeasureFigure9()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Overall[sti.STWC]*100, "%STWC")
		b.ReportMetric(f.Overall[sti.STC]*100, "%STC")
		b.ReportMetric(f.Overall[sti.STL]*100, "%STL")
	}
}

// BenchmarkFigure10Distributions reports the SPEC2006 overhead
// distribution extremes the box plots show.
func BenchmarkFigure10Distributions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := eval.MeasureFigure9()
		if err != nil {
			b.Fatal(err)
		}
		var min, max float64
		first := true
		for _, r := range f.Rows["SPEC2006"] {
			o := r.Overhead[sti.STWC]
			if first || o < min {
				min = o
			}
			if first || o > max {
				max = o
			}
			first = false
		}
		b.ReportMetric(min*100, "%min-STWC")
		b.ReportMetric(max*100, "%max-STWC")
	}
}

// BenchmarkPARTSComparison reruns the §6.3.2 nbench comparison (paper:
// PARTS 19.5% vs RSTI 1.54/0.52/2.78%).
func BenchmarkPARTSComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := eval.MeasurePARTSComparison()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(p.MeanPARTS*100, "%PARTS")
		b.ReportMetric(p.MeanSTWC*100, "%STWC")
		b.ReportMetric(p.MeanSTC*100, "%STC")
		b.ReportMetric(p.MeanSTL*100, "%STL")
	}
}

// BenchmarkPerBenchmarkSPEC2017 runs a single representative SPEC2017
// benchmark per iteration, for profiling the pipeline itself.
func BenchmarkPerBenchmarkSPEC2017(b *testing.B) {
	bench := workload.SPEC2017()[0]
	for i := 0; i < b.N; i++ {
		if _, err := eval.MeasureBenchmark(bench, sti.RSTIMechanisms); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Capabilities reruns the capability probes.
func BenchmarkTable2Capabilities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := eval.RenderTable2()
		if len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkAblationAdaptive measures the §7 future-work adaptive
// mechanism against STWC and STL, reporting the overhead of each and the
// fraction of pointer members whose class is location-bound (replay-proof).
func BenchmarkAblationAdaptive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.MeasureAdaptiveAblation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Overhead[sti.STWC]*100, "%STWC")
		b.ReportMetric(res.Overhead[sti.Adaptive]*100, "%Adaptive")
		b.ReportMetric(res.Overhead[sti.STL]*100, "%STL")
		b.ReportMetric(res.LocBoundFrac[sti.Adaptive]*100, "%loc-bound")
	}
}

// BenchmarkAblationTBI measures the PAC forgery acceptance rate with and
// without Top-Byte-Ignore (8-bit vs 16-bit PAC).
func BenchmarkAblationTBI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := eval.MeasureTBIAblation(40960)
		b.ReportMetric(float64(res.AcceptedTBI), "accept-8bit")
		b.ReportMetric(float64(res.AcceptedNoTBI), "accept-16bit")
	}
}

// BenchmarkReplaySurface quantifies the §7 replay discussion: the number
// of substitutable pointer pairs each mechanism leaves across SPEC2006.
func BenchmarkReplaySurface(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.MeasureReplaySurface()
		if err != nil {
			b.Fatal(err)
		}
		var stwc, stl int64
		for _, r := range rows {
			stwc += r.Pairs[sti.STWC]
			stl += r.Pairs[sti.STL]
		}
		b.ReportMetric(float64(stwc), "pairs-STWC")
		b.ReportMetric(float64(stl), "pairs-STL")
	}
}

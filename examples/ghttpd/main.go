// The GHTTPD data-oriented attack from the paper's Figure 2: a buffer
// overflow in log() lets the attacker overwrite the request pointer ptr
// between the "/.." path-traversal check and the CGI handler, so a request
// that already passed validation is swapped for a malicious one. No code
// pointer is touched — this is pure data-flow corruption — yet RSTI's
// scope-typed data pointers catch it.
package main

import (
	"fmt"
	"log"

	"rsti"
	"rsti/internal/vm"
)

const ghttpd = `
	char *attacker_url;   // attacker-controlled bytes already in memory

	int exec_cgi(char *path) {
		// Reaching here with "/../" in path is the attack's goal
		// (GHTTPD executed /bin/sh this way).
		if (strstr(path, "/..") != NULL) return 99;
		return 1;
	}

	void log_request(char *msg) {
		// The real log() has a stack buffer overflow; the hook stands in
		// for the attacker's out-of-bounds write.
		__hook(1);
	}

	int serveconnection(int sockfd) {
		char *ptr = "GET /cgi-bin/status";
		if (strstr(ptr, "/..") != NULL) {
			return 2; // reject path traversal
		}
		log_request(ptr);
		if (strstr(ptr, "cgi-bin") != NULL) {
			return exec_cgi(ptr);
		}
		return 0;
	}

	int main(void) {
		attacker_url = "/cgi-bin/../../bin/sh";
		return serveconnection(4);
	}
`

func main() {
	p, err := rsti.Compile(ghttpd)
	if err != nil {
		log.Fatal(err)
	}

	// The corruption: replace serveconnection's ptr — which already
	// passed the "/.." check — with the attacker's URL. ptr lives on the
	// stack; the overflow in log() reaches it.
	corrupt := rsti.WithHook(1, func(m *vm.Machine) error {
		slot, ok := m.VarAddr("serveconnection", "ptr")
		if !ok {
			return fmt.Errorf("ptr not on the stack")
		}
		urlSlot, _ := m.GlobalAddr("attacker_url")
		url, err := m.Mem.Peek(urlSlot, 8)
		if err != nil {
			return err
		}
		// The attacker writes the raw address of their URL (they cannot
		// forge a PAC without the key).
		return m.Mem.Poke(slot, m.Unit.Canonical(url), 8)
	})

	fmt.Println("GHTTPD data-oriented attack (paper Figure 2)")
	for _, mech := range rsti.Mechanisms {
		res, err := p.Run(mech, corrupt)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case res.Detected():
			fmt.Printf("  %-10s DETECTED (%v)\n", mech, res.Trap.Kind)
		case res.Exit == 99:
			fmt.Printf("  %-10s attack succeeded: /bin/sh executed\n", mech)
		default:
			fmt.Printf("  %-10s exit=%d err=%v\n", mech, res.Exit, res.Err)
		}
	}

	benign, _ := p.Run(rsti.STWC)
	fmt.Printf("benign request under RSTI-STWC: exit=%d (CGI handled normally)\n", benign.Exit)
}

// The libtiff control-flow hijack from the paper's Figure 1
// (CVE-2015-8668): a heap buffer overflow lets the attacker overwrite the
// tif_encoderow function pointer inside the TIFF object; the next
// TIFFWriteScanline call then jumps wherever the attacker chose.
package main

import (
	"fmt"
	"log"

	"rsti"
	"rsti/internal/vm"
)

const libtiff = `
	typedef struct tiff {
		int (*tif_encoderow)(struct tiff *t, char *buf, long size);
		long tif_scanlinesize;
		int tif_flags;
	} TIFF;

	TIFF *out;
	int shell_spawned = 0;

	int _TIFFNoRowEncode(TIFF *tif, char *buf, long size) {
		printf("encoding %ld bytes\n", size);
		return (int) size;
	}

	int attacker_shellcode(TIFF *tif, char *buf, long size) {
		shell_spawned = 1;
		return 0;
	}

	void _TIFFSetDefaultCompressionState(TIFF *tif) {
		tif->tif_encoderow = _TIFFNoRowEncode;
	}

	TIFF *TIFFOpen(void) {
		TIFF *tif = (TIFF*) malloc(sizeof(TIFF));
		tif->tif_scanlinesize = 64;
		tif->tif_flags = 0;
		_TIFFSetDefaultCompressionState(tif);
		return tif;
	}

	int TIFFWriteScanline(TIFF *tif, char *buf) {
		// The unsanitized _TIFFmalloc(width*length) overflow of Figure 1
		// lands adjacent to the TIFF object; the hook plays its part.
		__hook(1);
		return tif->tif_encoderow(tif, buf, tif->tif_scanlinesize);
	}

	int main(void) {
		out = TIFFOpen();
		char scan[64];
		int status = TIFFWriteScanline(out, (char*)scan);
		if (shell_spawned) return 99;
		return status;
	}
`

func main() {
	p, err := rsti.Compile(libtiff)
	if err != nil {
		log.Fatal(err)
	}

	overflow := rsti.WithHook(1, func(m *vm.Machine) error {
		// Find the heap TIFF object through the global, then overwrite
		// its first field — the encoder function pointer — with the
		// "shellcode" address.
		slot, _ := m.GlobalAddr("out")
		obj, err := m.Mem.Peek(slot, 8)
		if err != nil {
			return err
		}
		tok, _ := m.FuncToken("attacker_shellcode")
		return m.Mem.Poke(m.Unit.Canonical(obj), tok, 8)
	})

	fmt.Println("libtiff CVE-2015-8668 control-flow hijack (paper Figure 1)")
	for _, mech := range rsti.Mechanisms {
		res, err := p.Run(mech, overflow)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case res.Detected():
			fmt.Printf("  %-10s DETECTED (%v)\n", mech, res.Trap.Kind)
		case res.Exit == 99:
			fmt.Printf("  %-10s attack succeeded: shellcode executed\n", mech)
		default:
			fmt.Printf("  %-10s exit=%d err=%v\n", mech, res.Exit, res.Err)
		}
	}

	// Show the protection in the generated code.
	ir, _ := p.DumpIR(rsti.STWC)
	fmt.Println("\nexcerpt of the protected TIFFWriteScanline:")
	printFunc(ir, "func TIFFWriteScanline")
}

func printFunc(ir, header string) {
	printing := false
	lines := 0
	for _, line := range splitLines(ir) {
		if printing {
			fmt.Println(" ", line)
			lines++
			if line == "}" || lines > 18 {
				return
			}
		} else if len(line) >= len(header) && line[:len(header)] == header {
			printing = true
			fmt.Println(" ", line)
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}

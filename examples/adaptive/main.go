// The adaptive-mechanism extension (the paper's §7 future work): RSTI-STWC
// leaves pointer *substitution within one equivalence class* on the table
// — the paper's xalancbmk has 122 variables sharing an RSTI-type — while
// RSTI-STL's blanket location binding is the costliest mechanism. The
// Adaptive mechanism location-binds only the classes big enough for replay
// to matter.
//
// This example builds a program with one large class (a table of handlers,
// all the same type and scope) and one small class, replays a signed
// pointer within each, and compares STWC, Adaptive and STL on detection
// and cost.
package main

import (
	"fmt"
	"log"
	"strings"

	"rsti"
	"rsti/internal/sti"
	"rsti/internal/vm"
)

func victim() string {
	var b strings.Builder
	b.WriteString("int ok(void) { return 1; }\nint alt(void) { return 2; }\n")
	n := sti.AdaptiveECVThreshold + 8
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "int (*table%d)(void);\n", i)
	}
	b.WriteString("int (*lone_a)(void);\nint (*lone_b)(void);\n")
	// A mid-sized pool below the threshold: hot flows here cost only
	// under STL.
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&b, "int (*mid%d)(void);\n", i)
	}
	b.WriteString("void setup(void) {\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "\ttable%d = ok;\n", i)
	}
	b.WriteString("\tlone_a = ok;\n\tlone_b = alt;\n")
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&b, "\tmid%d = ok;\n", i)
	}
	b.WriteString("}\n")
	b.WriteString("int readback(void) {\n\tint s = 0;\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "\ts += table%d();\n", i)
	}
	b.WriteString("\treturn s + lone_a() + lone_b();\n}\n")
	// rotate moves handlers between same-class slots: free under STWC
	// (one shared modifier), a re-sign pair per move once locations enter
	// the modifier — this is where Adaptive and STL pay and STWC doesn't.
	b.WriteString("void rotate(void) {\n")
	for i := 0; i < n-1; i++ {
		fmt.Fprintf(&b, "\ttable%d = table%d;\n", i, i+1)
	}
	fmt.Fprintf(&b, "\ttable%d = table0;\n", n-1)
	b.WriteString("}\n")
	b.WriteString("void rotate_mid(void) {\n")
	for i := 0; i < 7; i++ {
		fmt.Fprintf(&b, "\tmid%d = mid%d;\n", i, i+1)
	}
	b.WriteString("\tmid7 = mid0;\n}\n")
	b.WriteString(`
		int main(void) {
			setup();
			for (int i = 0; i < 200; i++) { rotate(); rotate_mid(); }
			int before = readback();
			__hook(1);
			return readback() == before;
		}
	`)
	return b.String()
}

func replay(src, dst string) rsti.RunOption {
	return rsti.WithHook(1, func(m *vm.Machine) error {
		s, _ := m.GlobalAddr(src)
		d, _ := m.GlobalAddr(dst)
		v, err := m.Mem.Peek(s, 8)
		if err != nil {
			return err
		}
		return m.Mem.Poke(d, v, 8)
	})
}

func main() {
	p, err := rsti.Compile(victim())
	if err != nil {
		log.Fatal(err)
	}

	an := p.Analysis()
	var largest int
	for _, rt := range an.Types {
		if n := len(rt.Vars) + len(rt.Fields); n > largest {
			largest = n
		}
	}
	fmt.Printf("largest equivalence class: %d members (threshold %d)\n\n",
		largest, sti.AdaptiveECVThreshold)

	mechs := []rsti.Mechanism{rsti.STWC, rsti.Adaptive, rsti.STL}

	fmt.Println("replay INSIDE the large class (table1 -> table0):")
	for _, mech := range mechs {
		res, err := p.Run(mech, replay("table1", "table0"))
		if err != nil {
			log.Fatal(err)
		}
		verdict := "accepted (substitution works)"
		if res.Detected() {
			verdict = "DETECTED"
		}
		fmt.Printf("  %-13s %s\n", mech, verdict)
	}

	fmt.Println("\nreplay inside the two-member class (lone_b -> lone_a):")
	for _, mech := range mechs {
		res, err := p.Run(mech, replay("lone_b", "lone_a"))
		if err != nil {
			log.Fatal(err)
		}
		verdict := "accepted (below the threshold — the deliberate trade)"
		if res.Detected() {
			verdict = "DETECTED"
		}
		fmt.Printf("  %-13s %s\n", mech, verdict)
	}

	fmt.Println("\ncost on a benign run:")
	base, _ := p.Run(rsti.None)
	for _, mech := range mechs {
		res, err := p.Run(mech)
		if err != nil || res.Err != nil {
			log.Fatal(err, res.Err)
		}
		fmt.Printf("  %-13s %+6.2f%%  (%d PA ops)\n",
			mech, rsti.Overhead(base, res)*100, res.Stats.PACOps())
	}
}

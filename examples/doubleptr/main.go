// The pointer-to-pointer walkthrough from the paper's Figure 7: a struct
// node** cast to void** loses its original type statically, so RSTI
// preserves it dynamically — a Compact Equivalent (CE) tag in the
// Top-Byte-Ignore byte indexes the Full Equivalent (FE) type's modifier in
// a read-only metadata store.
package main

import (
	"fmt"
	"log"

	"rsti"
)

const figure7 = `
	struct node { int key; struct node *next; };

	// foo1 keeps the double pointer's type: no CE/FE machinery needed.
	void foo1(struct node **pp1) {
		if (*pp1 != NULL) {
			(*pp1)->key = 1;
		}
	}

	// foo2 receives a universal double pointer: the original type
	// (struct node**) is statically gone. pp_auth recovers it from the
	// CE tag when *pp2 is dereferenced.
	void foo2(void **pp2) {
		if (*pp2 != NULL) {
			*pp2 = NULL;
		}
	}

	int main(void) {
		struct node *p = (struct node*) malloc(sizeof(struct node));
		p->key = 41;
		p->next = NULL;
		foo1(&p);
		printf("after foo1: key=%d\n", p->key);
		foo2((void**) &p);
		if (p == NULL) {
			printf("after foo2: p cleared through void**\n");
			return 0;
		}
		return 1;
	}
`

func main() {
	p, err := rsti.Compile(figure7)
	if err != nil {
		log.Fatal(err)
	}

	an := p.Analysis()
	fmt.Printf("pointer-to-pointer census: %d sites total, %d need CE/FE\n",
		an.PPTotalSites, len(an.PPSpecial))
	for _, site := range an.PPSpecial {
		fmt.Printf("  in %s: %s cast to %s  ->  CE tag %d\n",
			site.Fn, site.FromTy, site.ToTy, site.CE)
	}

	for _, mech := range rsti.Mechanisms {
		res, err := p.Run(mech)
		if err != nil {
			log.Fatal(err)
		}
		status := "ok"
		if res.Err != nil {
			status = res.Err.Error()
		}
		fmt.Printf("  %-10s exit=%d pp-ops=%d  %s\n", mech, res.Exit, res.Stats.PPOps, status)
	}

	// Show the pp_* library calls in the instrumented IR.
	ir, _ := p.DumpIR(rsti.STWC)
	fmt.Println("\npp instrumentation in main and foo2:")
	for _, line := range split(ir) {
		if contains(line, "pp_") {
			fmt.Println(" ", line)
		}
	}
}

func split(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

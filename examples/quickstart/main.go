// Quickstart: compile a program, inspect its RSTI-types, run it under
// every mechanism, then corrupt a function pointer mid-run and watch the
// three RSTI mechanisms catch what the baseline lets through.
package main

import (
	"fmt"
	"log"
	"os"

	"rsti"
	"rsti/internal/vm"
)

const victim = `
	// A tiny service with a dispatch table, in the shape of the paper's
	// motivating examples: the function pointer is the attack surface.
	int handle_ping(void) { printf("pong\n"); return 0; }
	int handle_evil(void) { printf("ATTACKER CODE RUNS\n"); return 666; }

	int (*dispatch)(void);

	int serve(void) {
		__hook(1);            // <- a buffer overflow would land here
		return dispatch();
	}

	int main(void) {
		dispatch = handle_ping;
		return serve();
	}
`

func main() {
	p, err := rsti.Compile(victim)
	if err != nil {
		log.Fatal(err)
	}

	// What did the STI analysis recover?
	eq := p.Equivalence()
	fmt.Printf("STI analysis: %d pointer variables, %d basic types, %d RSTI-types (STWC)\n",
		eq.NV, eq.NT, eq.RTSTWC)
	for _, rt := range p.Analysis().Types {
		if len(rt.Vars)+len(rt.Fields) > 0 {
			fmt.Printf("  %s\n", rt)
		}
	}

	// The exploit: overwrite the dispatch pointer with another function's
	// address, exactly what the libtiff CVE in the paper's Figure 1 does.
	hijack := rsti.WithHook(1, func(m *vm.Machine) error {
		slot, _ := m.GlobalAddr("dispatch")
		tok, _ := m.FuncToken("handle_evil")
		return m.Mem.Poke(slot, tok, 8)
	})

	fmt.Println("\nrunning the hijack under every mechanism:")
	for _, mech := range rsti.Mechanisms {
		res, err := p.Run(mech, hijack, rsti.WithOutput(os.Stdout))
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case res.Detected():
			fmt.Printf("  %-10s DETECTED: %v\n", mech, res.Trap.Kind)
		case res.Err != nil:
			fmt.Printf("  %-10s crashed: %v\n", mech, res.Err)
		default:
			fmt.Printf("  %-10s exit=%d (attack %s)\n", mech, res.Exit,
				map[bool]string{true: "SUCCEEDED", false: "had no effect"}[res.Exit == 666])
		}
	}

	// And the cost of protection on an honest run.
	base, _ := p.Run(rsti.None)
	for _, mech := range rsti.RSTIMechanisms {
		res, _ := p.Run(mech)
		fmt.Printf("overhead %-10s %+.2f%%  (%d PA instructions executed)\n",
			mech, rsti.Overhead(base, res)*100, res.Stats.PACOps())
	}
}

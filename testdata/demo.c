/* A small program exercising most of the cminor subset; compile it with:
 *   go run ./cmd/rstic -types -equiv testdata/demo.c
 *   go run ./cmd/rstirun -all testdata/demo.c
 */
enum Op { ADD, MUL, XOR };

struct task {
	int op;
	long a, b;
	long (*run)(long a, long b);
	struct task *next;
};

long do_add(long a, long b) { return a + b; }
long do_mul(long a, long b) { return a * b; }
long do_xor(long a, long b) { return a ^ b; }

struct task *queue;

void enqueue(int op, long a, long b) {
	struct task *t = (struct task*) malloc(sizeof(struct task));
	t->op = op;
	t->a = a;
	t->b = b;
	switch (op) {
	case ADD: t->run = do_add; break;
	case MUL: t->run = do_mul; break;
	default:  t->run = do_xor;
	}
	t->next = queue;
	queue = t;
}

long drain(void) {
	long acc = 0;
	while (queue != NULL) {
		struct task *t = queue;
		queue = t->next;
		acc += t->run(t->a, t->b);
	}
	return acc;
}

int main(void) {
	for (int i = 1; i <= 5; i++) {
		enqueue(i % 3, (long) i, (long) (i + 1));
	}
	long total = drain();
	printf("total=%ld\n", total);
	return (int)(total & 127);
}

/* A victim with an attack injection point; see examples/quickstart for how
 * to drive the corruption from Go. Benignly it prints "pong" and exits 0.
 */
int handle_ping(void) { printf("pong\n"); return 0; }
int handle_evil(void) { printf("pwned\n"); return 66; }

int (*dispatch)(void);

int main(void) {
	dispatch = handle_ping;
	__hook(1);
	return dispatch();
}

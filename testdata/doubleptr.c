/* The paper's Figure 7 pointer-to-pointer pattern. */
struct node { int key; struct node *next; };

void reset_via_universal(void **pp) {
	if (*pp != NULL) { *pp = NULL; }
}

int main(void) {
	struct node *p = (struct node*) malloc(sizeof(struct node));
	p->key = 41;
	reset_via_universal((void**) &p);
	if (p == NULL) return 0;
	return 1;
}

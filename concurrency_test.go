package rsti_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"rsti"
	"rsti/internal/vm"
)

const sharedSrc = `
int g;
int benign(void) { return 7; }
int evil(void)   { return 666; }
int (*handler)(void);
int main(void) {
    int *p; int i;
    p = &g;
    handler = benign;
    for (i = 0; i < 200; i = i + 1) { *p = *p + i; }
    __hook(1);
    return handler() + (*p & 0);
}
`

// TestSharedProgramConcurrency hammers one *Program from many goroutines
// across every mechanism simultaneously (run under -race in CI). Each
// mechanism's result must equal its single-threaded reference, attacked
// and benign alike.
func TestSharedProgramConcurrency(t *testing.T) {
	p, err := rsti.Compile(sharedSrc)
	if err != nil {
		t.Fatal(err)
	}
	hijack := rsti.WithHook(1, func(m *vm.Machine) error {
		slot, _ := m.GlobalAddr("handler")
		tok, _ := m.FuncToken("evil")
		return m.Mem.Poke(slot, tok, 8)
	})

	type ref struct {
		exit     int64
		cycles   int64
		detected bool
	}
	benignRef := make(map[rsti.Mechanism]ref)
	attackRef := make(map[rsti.Mechanism]ref)
	mechs := append(append([]rsti.Mechanism{}, rsti.Mechanisms...), rsti.Adaptive)
	for _, mech := range mechs {
		b, err := p.Run(mech)
		if err != nil {
			t.Fatalf("%s benign: %v", mech, err)
		}
		benignRef[mech] = ref{b.Exit, b.Stats.Cycles, b.Detected()}
		a, err := p.Run(mech, hijack)
		if err != nil {
			t.Fatalf("%s attacked: %v", mech, err)
		}
		attackRef[mech] = ref{a.Exit, a.Stats.Cycles, a.Detected()}
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		for _, mech := range mechs {
			wg.Add(1)
			go func(i int, mech rsti.Mechanism) {
				defer wg.Done()
				attacked := i%2 == 0
				var opts []rsti.RunOption
				want := benignRef[mech]
				if attacked {
					opts = append(opts, hijack)
					want = attackRef[mech]
				}
				res, err := p.Run(mech, opts...)
				if err != nil {
					t.Errorf("%s (attacked=%v): %v", mech, attacked, err)
					return
				}
				if res.Exit != want.exit || res.Stats.Cycles != want.cycles || res.Detected() != want.detected {
					t.Errorf("%s (attacked=%v): got exit=%d cycles=%d detected=%v, want %+v",
						mech, attacked, res.Exit, res.Stats.Cycles, res.Detected(), want)
				}
			}(i, mech)
		}
	}
	wg.Wait()
}

// TestEnginePublicAPI drives the public Engine: concurrent submissions,
// stats, and a mid-run deadline.
func TestEnginePublicAPI(t *testing.T) {
	p, err := rsti.Compile(sharedSrc)
	if err != nil {
		t.Fatal(err)
	}
	eng := rsti.NewEngine(p, rsti.EngineConfig{Workers: 4, QueueDepth: 32})
	defer eng.Close()

	want, _ := p.Run(rsti.STWC)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := eng.Submit(context.Background(), rsti.STWC)
			if err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			if res.Exit != want.Exit || res.Stats.Cycles != want.Stats.Cycles {
				t.Errorf("engine run differs from direct run")
			}
		}()
	}
	wg.Wait()
	if st := eng.Stats(); st.Completed != 16 || st.Workers != 4 {
		t.Errorf("stats = %+v, want 16 completed on 4 workers", st)
	}

	spin, err := rsti.Compile(`int main(void){ int i; int a; a = 0; for (i = 0; i < 100000000; i = i + 1) { a = a + i; } return a & 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	spinEng := rsti.NewEngine(spin, rsti.EngineConfig{Workers: 1})
	defer spinEng.Close()
	res, err := spinEng.Submit(context.Background(), rsti.None, rsti.WithTimeout(20*time.Millisecond))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Errorf("want deadline-exceeded run, got %v", res.Err)
	}
}

// TestTypedErrors covers the exported error taxonomy end to end.
func TestTypedErrors(t *testing.T) {
	if _, err := rsti.Compile("int main(void) { return 0 }"); !errors.Is(err, rsti.ErrParse) {
		t.Errorf("syntax error: errors.Is(err, ErrParse) = false: %v", err)
	}
	if _, err := rsti.Compile("int main(void) { return nosuch; }"); !errors.Is(err, rsti.ErrTypeCheck) {
		t.Errorf("semantic error: errors.Is(err, ErrTypeCheck) = false: %v", err)
	}

	p, err := rsti.Compile(sharedSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(rsti.None, rsti.WithStepBudget(50))
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Err, rsti.ErrStepBudget) {
		t.Errorf("errors.Is(res.Err, ErrStepBudget) = false: %v", res.Err)
	}
	var te *rsti.TrapError
	if !errors.As(res.Err, &te) || te.Kind != vm.TrapMaxSteps || te.Mechanism != rsti.None {
		t.Errorf("errors.As TrapError: got %+v", te)
	}

	hijack := rsti.WithHook(1, func(m *vm.Machine) error {
		slot, _ := m.GlobalAddr("handler")
		tok, _ := m.FuncToken("evil")
		return m.Mem.Poke(slot, tok, 8)
	})
	res, err = p.Run(rsti.STWC, hijack)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.As(res.Err, &te) {
		t.Fatalf("trapped run's Err is %T, want *TrapError", res.Err)
	}
	if !te.SecurityTrap() || te.Mechanism != rsti.STWC || te.Fn == "" {
		t.Errorf("TrapError fields: %+v", te)
	}
	if tr, ok := vm.AsTrap(res.Err); !ok || tr != res.Trap {
		t.Errorf("vm.AsTrap no longer reaches the underlying trap")
	}
}

// TestOutputCap verifies the printf-flood guard: capped capture, surfaced
// truncation, bounded memory.
func TestOutputCap(t *testing.T) {
	p, err := rsti.Compile(`
int main(void) {
    int i;
    for (i = 0; i < 2000; i = i + 1) { printf("spam %d spam spam spam\n", i); }
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(rsti.None, rsti.WithMaxOutput(512))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutputTruncated {
		t.Fatal("OutputTruncated = false, want true")
	}
	if len(res.Output) > 512 {
		t.Errorf("captured %d bytes, cap was 512", len(res.Output))
	}
	if !strings.HasPrefix(res.Output, "spam 0") {
		t.Errorf("head of output lost: %q", res.Output[:20])
	}

	full, err := p.Run(rsti.None, rsti.WithMaxOutput(-1))
	if err != nil {
		t.Fatal(err)
	}
	if full.OutputTruncated || len(full.Output) < 2000*10 {
		t.Errorf("uncapped run truncated: %d bytes, truncated=%v", len(full.Output), full.OutputTruncated)
	}
}
